package runctl

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/testutil"
)

func TestStreamOrderedEmission(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 100
	var got []int
	err := Stream(nil, 8, n,
		func(i int) (int, error) { return i * i, nil },
		func(i, v int) error {
			if v != i*i {
				return fmt.Errorf("emit(%d) = %d", i, v)
			}
			got = append(got, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("emitted %d of %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emission order broken at %d: %d", i, v)
		}
	}
}

func TestStreamFirstErrorWinsAndPoolDrains(t *testing.T) {
	testutil.CheckGoroutines(t)
	boom := errors.New("boom")
	var calls atomic.Int64
	err := Stream(nil, 4, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 17 {
			return 0, boom
		}
		return i, nil
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if c := calls.Load(); c >= 1000 {
		t.Errorf("error did not short-circuit the pool: %d calls", c)
	}
}

func TestStreamCancellationStopsWorkers(t *testing.T) {
	testutil.CheckGoroutines(t)
	ctx, cancel := context.WithCancel(context.Background())
	ctl := New(ctx, Limits{})
	var calls atomic.Int64
	err := Stream(ctl, 4, 10000, func(i int) (int, error) {
		if calls.Add(1) == 20 {
			cancel()
		}
		return i, nil
	}, nil)
	if !errors.Is(err, diag.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if c := calls.Load(); c >= 10000 {
		t.Errorf("cancellation did not stop the pool: %d calls", c)
	}
}

func TestStreamIterationBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	ctl := New(context.Background(), Limits{MaxIters: 10})
	err := Stream(ctl, 2, 1000, func(i int) (int, error) { return i, nil }, nil)
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestStreamPanicContainment(t *testing.T) {
	testutil.CheckGoroutines(t)
	err := Stream(nil, 4, 100, func(i int) (int, error) {
		if i == 42 {
			panic("poisoned trial")
		}
		return i, nil
	}, nil)
	if !errors.Is(err, diag.ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("want *diag.Error, got %T", err)
	}
	if len(de.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if de.Detail != "poisoned trial" {
		t.Errorf("detail = %q", de.Detail)
	}
}

func TestStreamEmitErrorStopsRun(t *testing.T) {
	testutil.CheckGoroutines(t)
	stop := errors.New("disk full")
	emitted := 0
	err := Stream(nil, 4, 1000,
		func(i int) (int, error) { return i, nil },
		func(i, v int) error {
			if i == 5 {
				return stop
			}
			emitted++
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("want emit error, got %v", err)
	}
	if emitted != 5 {
		t.Errorf("emitted %d rows before the failing one, want 5", emitted)
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	testutil.CheckGoroutines(t)
	if err := Stream[int](nil, 4, 0, nil, nil); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ran := false
	if err := ForEach(nil, 8, 1, func(i int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single item not run")
	}
}

func TestForEachParallelismIsBounded(t *testing.T) {
	testutil.CheckGoroutines(t)
	var cur, peak atomic.Int64
	err := ForEach(nil, 3, 64, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("concurrency peaked at %d with workers=3", p)
	}
}
