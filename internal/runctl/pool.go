package runctl

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rlcint/internal/diag"
)

// Stream runs fn(i) for every i in [0, n) across at most workers goroutines
// and delivers the results to emit in index order as soon as the contiguous
// prefix is complete — the streaming worker pool shared by the Monte-Carlo
// engine and the sweep CLI.
//
// Guarantees:
//
//   - bounded concurrency: at most workers (default GOMAXPROCS) goroutines
//     run fn at any moment;
//   - cancellation-aware: the shared Controller is ticked once per item, so
//     a cancelled context, expired deadline, or exhausted budget stops the
//     pool within one item per worker;
//   - ordered streaming: emit(i, v) is called from the calling goroutine in
//     strictly increasing i with no gaps, so rows already emitted are valid
//     prefixes of the full result even when the run is cut short;
//   - no goroutine leaks: Stream returns only after every worker goroutine
//     has exited, on success, error, and cancellation alike;
//   - panic containment: a panic in fn is converted into a typed
//     diag.ErrPanic error instead of crashing the process.
//
// The first error (from run control, fn, or emit) wins and is returned;
// emitted prefixes stay emitted. emit may be nil when only fn's side
// effects matter.
func Stream[T any](ctl *Controller, workers, n int, fn func(i int) (T, error), emit func(i int, v T) error) error {
	if n <= 0 {
		return ctl.Check("runctl.Stream")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	type item struct {
		i   int
		v   T
		err error
	}
	var next atomic.Int64
	var stop atomic.Bool
	out := make(chan item)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				it := item{i: i}
				if it.err = ctl.Tick("runctl.Stream"); it.err == nil {
					it.v, it.err = guarded(fn, i)
				}
				out <- it
				if it.err != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	pending := make(map[int]T)
	emitNext := 0
	var firstErr error
	for it := range out {
		if firstErr != nil {
			continue // draining so the workers can exit
		}
		if it.err != nil {
			firstErr = it.err
			stop.Store(true)
			continue
		}
		if emit == nil {
			continue
		}
		pending[it.i] = it.v
		for {
			v, ok := pending[emitNext]
			if !ok {
				break
			}
			delete(pending, emitNext)
			if err := emit(emitNext, v); err != nil {
				firstErr = err
				stop.Store(true)
				break
			}
			emitNext++
		}
	}
	return firstErr
}

// guarded calls fn(i) with panic containment so one poisoned work item
// cannot take down the whole pool (or the process).
func guarded[T any](fn func(int) (T, error), i int) (v T, err error) {
	defer diag.RecoverTo(&err, "runctl.worker")
	return fn(i)
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines with the same cancellation, leak, and panic guarantees as
// Stream, for callers that collect results themselves (e.g. into disjoint
// slice slots).
func ForEach(ctl *Controller, workers, n int, fn func(i int) error) error {
	return Stream(ctl, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	}, nil)
}
