package runctl

import (
	"context"
	"errors"
	"testing"
	"time"

	"rlcint/internal/diag"
)

func TestNilControllerIsFree(t *testing.T) {
	var c *Controller
	for i := 0; i < 10; i++ {
		if err := c.Tick("op"); err != nil {
			t.Fatalf("nil controller Tick: %v", err)
		}
	}
	if err := c.Check("op"); err != nil {
		t.Fatalf("nil controller Check: %v", err)
	}
	if c.Elapsed() != 0 || c.Iterations() != 0 {
		t.Fatal("nil controller reports nonzero state")
	}
	if c.Context() != context.Background() {
		t.Fatal("nil controller context is not background")
	}
}

func TestNewReturnsNilForUncontrolled(t *testing.T) {
	if New(context.Background(), Limits{}) != nil {
		t.Fatal("background + zero limits should yield the free nil controller")
	}
	if New(nil, Limits{}) != nil {
		t.Fatal("nil ctx + zero limits should yield the free nil controller")
	}
	if New(context.Background(), Limits{MaxIters: 1}) == nil {
		t.Fatal("limits must produce a real controller")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, Limits{})
	if err := c.Tick("op"); err != nil {
		t.Fatalf("pre-cancel Tick: %v", err)
	}
	cancel()
	err := c.Tick("spice.Transient")
	if !errors.Is(err, diag.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("want *diag.Error, got %T", err)
	}
	if de.Op != "spice.Transient" {
		t.Errorf("op = %q", de.Op)
	}
	if de.Iteration != 2 {
		t.Errorf("iteration = %d, want 2", de.Iteration)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cause context.Canceled not wrapped")
	}
	if !IsStop(err) {
		t.Error("IsStop(cancelled) = false")
	}
}

func TestContextDeadlineMapsToErrDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := New(ctx, Limits{})
	err := c.Tick("op")
	if !errors.Is(err, diag.ErrDeadline) {
		t.Fatalf("want ErrDeadline from expired ctx deadline, got %v", err)
	}
}

func TestWallClockBudget(t *testing.T) {
	c := New(context.Background(), Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := c.Tick("op")
	if !errors.Is(err, diag.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	var de *diag.Error
	if errors.As(err, &de) && de.Elapsed <= 0 {
		t.Error("deadline error carries no elapsed time")
	}
	if !IsStop(err) {
		t.Error("IsStop(deadline) = false")
	}
}

func TestIterationBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxIters: 3})
	for i := 0; i < 3; i++ {
		if err := c.Tick("op"); err != nil {
			t.Fatalf("tick %d inside budget: %v", i, err)
		}
	}
	err := c.Tick("op")
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	// Check does not consume budget.
	c2 := New(context.Background(), Limits{MaxIters: 1})
	for i := 0; i < 5; i++ {
		if err := c2.Check("op"); err != nil {
			t.Fatalf("Check consumed budget: %v", err)
		}
	}
	if !IsStop(err) {
		t.Error("IsStop(budget) = false")
	}
}

func TestIsStopRejectsOrdinaryFailures(t *testing.T) {
	if IsStop(errors.New("plain")) {
		t.Error("plain error classified as stop")
	}
	if IsStop(diag.New(diag.ErrNonConvergence, "op")) {
		t.Error("non-convergence classified as stop")
	}
	if IsStop(nil) {
		t.Error("nil classified as stop")
	}
}
