// Package runctl is the run-control layer shared by every long-running
// solver in the library: cooperative cancellation via context.Context,
// wall-clock deadlines, iteration budgets, and a bounded-concurrency
// cancellation-aware worker pool.
//
// The central type is Controller, built once per solve from a context and a
// Limits. Solvers call Tick at iteration boundaries (one Newton iteration,
// one transient sub-step, one Monte-Carlo trial); a nil *Controller ticks
// for free, so uncontrolled solves pay nothing. When the context is
// cancelled, the deadline passes, or the budget runs out, Tick returns a
// typed *diag.Error (ErrCancelled / ErrDeadline / ErrBudget) carrying the
// elapsed wall-clock time and iteration count, and the solver unwinds,
// honouring the partial-result contract where one exists.
//
// Run-control stops are terminal: recovery ladders must NOT retry them.
// IsStop distinguishes them from ordinary convergence failures.
package runctl

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"rlcint/internal/diag"
)

// Limits bound one solve. The zero value imposes no bounds.
type Limits struct {
	// Timeout is the wall-clock budget for the solve (0 = unlimited). It is
	// enforced cooperatively at iteration boundaries, so a solve overruns by
	// at most one iteration.
	Timeout time.Duration
	// MaxIters is the cooperative iteration budget (0 = unlimited): the
	// total number of Tick calls — Newton iterations, transient sub-steps,
	// pool work items — the controller admits before stopping the run.
	MaxIters int64
}

// Controller carries the run-control state of one solve. A nil *Controller
// is valid and never stops anything, so solvers can call Tick/Check
// unconditionally on hot paths.
type Controller struct {
	ctx      context.Context
	start    time.Time
	deadline time.Time // zero = no wall-clock budget
	maxIters int64     // 0 = no iteration budget
	iters    atomic.Int64
}

// New builds a Controller for one solve. It returns nil — the free,
// never-stopping controller — when ctx is nil or background and lim is the
// zero value, so plumbing through uncontrolled call paths costs nothing.
func New(ctx context.Context, lim Limits) *Controller {
	if (ctx == nil || ctx == context.Background()) && lim == (Limits{}) {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Controller{ctx: ctx, start: time.Now(), maxIters: lim.MaxIters}
	if lim.Timeout > 0 {
		c.deadline = c.start.Add(lim.Timeout)
	}
	return c
}

// Context returns the controller's context (context.Background for nil
// controllers), for forwarding into nested solves.
func (c *Controller) Context() context.Context {
	if c == nil || c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Elapsed returns the wall-clock time since the controller was built (0 for
// nil controllers).
func (c *Controller) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return time.Since(c.start)
}

// Iterations returns the number of Ticks consumed so far.
func (c *Controller) Iterations() int64 {
	if c == nil {
		return 0
	}
	return c.iters.Load()
}

// Tick consumes one unit of the iteration budget and checks every stop
// condition. Solvers call it at each iteration boundary; op names the
// checking operation for the returned error. Safe for concurrent use (pool
// workers share one controller).
func (c *Controller) Tick(op string) error {
	if c == nil {
		return nil
	}
	n := c.iters.Add(1)
	if c.maxIters > 0 && n > c.maxIters {
		return c.fail(diag.ErrBudget, op, n, nil)
	}
	return c.check(op, n)
}

// Check checks the stop conditions without consuming budget — for
// boundaries that are not iterations (entry points, per-point loops that
// tick elsewhere).
func (c *Controller) Check(op string) error {
	if c == nil {
		return nil
	}
	return c.check(op, c.iters.Load())
}

func (c *Controller) check(op string, n int64) error {
	if err := c.ctx.Err(); err != nil {
		kind := diag.ErrCancelled
		if errors.Is(err, context.DeadlineExceeded) {
			kind = diag.ErrDeadline
		}
		return c.fail(kind, op, n, err)
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return c.fail(diag.ErrDeadline, op, n, nil)
	}
	return nil
}

func (c *Controller) fail(kind error, op string, n int64, cause error) *diag.Error {
	de := diag.New(kind, op)
	de.Elapsed = time.Since(c.start)
	de.Iteration = int(n)
	de.Err = cause
	return de
}

// IsStop reports whether err is a terminal run-control stop — cancellation,
// deadline, or budget exhaustion. Recovery ladders use it to propagate
// immediately instead of retrying a doomed rung.
func IsStop(err error) bool {
	return errors.Is(err, diag.ErrCancelled) ||
		errors.Is(err, diag.ErrDeadline) ||
		errors.Is(err, diag.ErrBudget)
}
