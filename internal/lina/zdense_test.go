package lina

import (
	"math/cmplx"
	"testing"
)

func TestZSolve(t *testing.T) {
	a := NewZDense(2, 2)
	a.Set(0, 0, complex(1, 1))
	a.Set(0, 1, complex(2, 0))
	a.Set(1, 0, complex(0, -1))
	a.Set(1, 1, complex(3, 2))
	want := []complex128{complex(1, -2), complex(0.5, 0.25)}
	b := []complex128{
		a.At(0, 0)*want[0] + a.At(0, 1)*want[1],
		a.At(1, 0)*want[0] + a.At(1, 1)*want[1],
	}
	x, err := ZSolve(a, b)
	if err != nil {
		t.Fatalf("ZSolve: %v", err)
	}
	for i := range want {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestZSolvePivot(t *testing.T) {
	a := NewZDense(2, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	x, err := ZSolve(a, []complex128{complex(0, 2), complex(5, 0)})
	if err != nil {
		t.Fatalf("ZSolve: %v", err)
	}
	if x[0] != complex(5, 0) || x[1] != complex(0, 2) {
		t.Errorf("got %v", x)
	}
}

func TestZSolveSingular(t *testing.T) {
	a := NewZDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 2)
	if _, err := ZSolve(a, []complex128{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestZMul(t *testing.T) {
	id := NewZDense(2, 2)
	id.Set(0, 0, 1)
	id.Set(1, 1, 1)
	a := NewZDense(2, 2)
	a.Set(0, 0, complex(1, 2))
	a.Set(0, 1, complex(3, -1))
	a.Set(1, 0, complex(0, 1))
	a.Set(1, 1, complex(-2, 0))
	c := a.Mul(id)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Errorf("identity product mismatch at (%d,%d)", i, j)
			}
		}
	}
}
