// Package lina implements small dense linear algebra: real and complex LU
// factorization with partial pivoting, solves, determinants and a handful of
// vector helpers. Matrices here are tiny (MNA reduction blocks, 2x2 Newton
// systems, ABCD chains), so the implementation favours clarity and numerical
// robustness over blocking or vectorization.
package lina
