package lina

import (
	"fmt"
	"math/cmplx"
)

// ZDense is a dense row-major complex matrix, used for frequency-domain
// two-port chains and AC analysis.
type ZDense struct {
	Rows, Cols int
	Data       []complex128
}

// NewZDense allocates a zero complex matrix.
func NewZDense(rows, cols int) *ZDense {
	return &ZDense{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (i, j).
func (m *ZDense) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *ZDense) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *ZDense) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Mul returns the matrix product m*b.
func (m *ZDense) Mul(b *ZDense) *ZDense {
	if m.Cols != b.Rows {
		panic("lina: ZDense Mul dimension mismatch")
	}
	out := NewZDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// ZSolve solves the complex system a*x = b with Gaussian elimination and
// partial pivoting; a and b are not modified.
func ZSolve(a *ZDense, b []complex128) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lina: ZSolve requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("lina: ZSolve rhs length %d != %d", len(b), n)
	}
	lu := append([]complex128(nil), a.Data...)
	x := append([]complex128(nil), b...)
	for col := 0; col < n; col++ {
		p := col
		maxv := cmplx.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := cmplx.Abs(lu[r*n+col]); v > maxv {
				maxv, p = v, r
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu[col*n+j], lu[p*n+j] = lu[p*n+j], lu[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		piv := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := lu[r*n+col] / piv
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= m * lu[col*n+j]
			}
			x[r] -= m * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for j := r + 1; j < n; j++ {
			s -= lu[r*n+j] * x[j]
		}
		x[r] = s / lu[r*n+r]
	}
	return x, nil
}
