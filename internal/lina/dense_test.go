package lina

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorSolve(t *testing.T) {
	a := NewDense(3, 3)
	vals := [][]float64{{4, -2, 1}, {-2, 4, -2}, {1, -2, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	b := []float64{11, -16, 17}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ax := a.MulVec(x)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-10 {
			t.Errorf("residual[%d] = %v", i, ax[i]-b[i])
		}
	}
}

func TestFactorPivoting(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{2, 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if x[0] != 5 || x[1] != 2 {
		t.Errorf("got %v, want [5 2]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("expected ErrSingular")
	}
}

func TestDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if math.Abs(f.Det()-2) > 1e-12 {
		t.Errorf("det = %v, want 2", f.Det())
	}
	// A row swap flips the permutation sign but not the determinant value.
	b := NewDense(2, 2)
	b.Set(0, 0, 0)
	b.Set(0, 1, 1)
	b.Set(1, 0, 1)
	b.Set(1, 1, 0)
	fb, err := Factor(b)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if math.Abs(fb.Det()+1) > 1e-12 {
		t.Errorf("det of swap = %v, want -1", fb.Det())
	}
}

func TestSolveRandomProperty(t *testing.T) {
	// Property: for random diagonally dominant systems, solve residual is
	// tiny. Diagonal dominance guarantees non-singularity.
	rng := rand.New(rand.NewSource(7))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 1 + r.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Float64()*2 - 1
					a.Set(i, j, v)
					sum += math.Abs(v)
				}
			}
			a.Set(i, i, sum+1+r.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMul(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(i*3+j+1))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			b.Set(i, j, float64(i*2+j+1))
		}
	}
	c := a.Mul(b)
	want := [][]float64{{22, 28}, {49, 64}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestCloneZeroAdd(t *testing.T) {
	a := NewDense(2, 2)
	a.Add(0, 0, 2)
	a.Add(0, 0, 3)
	if a.At(0, 0) != 5 {
		t.Errorf("Add accumulation failed: %v", a.At(0, 0))
	}
	c := a.Clone()
	c.Zero()
	if a.At(0, 0) != 5 || c.At(0, 0) != 0 {
		t.Error("Clone/Zero aliasing")
	}
}
