package lina

import (
	"fmt"
	"math"

	"rlcint/internal/diag"
)

// ErrSingular is returned when a factorization encounters an exactly zero
// pivot. It wraps diag.ErrSingularJacobian, so callers can match either
// sentinel.
var ErrSingular = fmt.Errorf("lina: singular matrix: %w", diag.ErrSingularJacobian)

// Dense is a dense row-major real matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zero matrix with the given shape.
func NewDense(rows, cols int) *Dense {
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j); this is the MNA "stamp" primitive.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all entries in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes y = m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("lina: MulVec dimension mismatch: %d != %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns the matrix product m*b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.Cols != b.Rows {
		panic("lina: Mul dimension mismatch")
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign float64
}

// Factor computes the LU factorization of a square matrix. The input is not
// modified.
func Factor(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("lina: Factor requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{n: n, lu: append([]float64(nil), a.Data...), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		p := col
		maxv := math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[r*n+col]); v > maxv {
				maxv, p = v, r
			}
		}
		if maxv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				f.lu[col*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[col*n+j]
			}
			f.piv[col], f.piv[p] = f.piv[p], f.piv[col]
			f.sign = -f.sign
		}
		piv := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / piv
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= m * f.lu[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A*x = b for one right-hand side, returning a new slice.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// Solve factors a and solves a*x = b in one call.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// LUWS is a reusable dense-LU workspace for repeated small factorizations
// (the reduced-order transient stepper factors q×q and p×p systems every
// timestep configuration and every Newton iteration). FactorInto/SolveInto
// reuse the workspace buffers, so steady-state use allocates nothing.
type LUWS struct {
	n   int
	lu  []float64
	piv []int
}

// FactorInto computes the partially-pivoted LU factorization of the n×n
// row-major matrix a (not modified) into the workspace, growing its buffers
// only when n increases. The arithmetic is identical to Factor.
func (f *LUWS) FactorInto(a []float64, n int) error {
	if len(a) != n*n {
		return fmt.Errorf("lina: FactorInto needs %d values for n=%d, got %d", n*n, n, len(a))
	}
	if cap(f.lu) < n*n {
		f.lu = make([]float64, n*n)
		f.piv = make([]int, n)
	}
	f.n = n
	f.lu = f.lu[:n*n]
	f.piv = f.piv[:n]
	copy(f.lu, a)
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		p := col
		maxv := math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(f.lu[r*n+col]); v > maxv {
				maxv, p = v, r
			}
		}
		if maxv == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				f.lu[col*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[col*n+j]
			}
			f.piv[col], f.piv[p] = f.piv[p], f.piv[col]
		}
		piv := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / piv
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				f.lu[r*n+j] -= m * f.lu[col*n+j]
			}
		}
	}
	return nil
}

// SolveInto solves A·x = b using the current factorization, writing into x.
// x and b must have length n and may not alias.
func (f *LUWS) SolveInto(x, b []float64) {
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n+i+1 : (i+1)*n]
		for j, v := range row {
			s -= v * x[i+1+j]
		}
		x[i] = s / f.lu[i*n+i]
	}
}
