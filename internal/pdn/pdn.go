// Package pdn models an on-chip power-delivery network as a 2-D distributed
// RLC mesh — the large-mesh workload the sparse engine's fill-reducing
// ordering and iterative solvers exist for. The model follows the
// distributed-PDN structure of Gupta et al. (DATE 2007): a power grid of
// NX×NY nodes joined by RL segments, per-node decoupling capacitance, and a
// sparse array of C4 bumps tying the grid to the package supply through an
// RL branch. Two analyses run on the mesh: a DC IR-drop solve (conductances
// only — the symmetric positive-definite shape the CG path eats) and an AC
// impedance-profile sweep over log-spaced frequencies (a complex system
// solved in its real 2n×2n equivalent through the batched sweep engine).
package pdn

import (
	"fmt"
	"math"

	"rlcint/internal/sparse"
	"rlcint/internal/tech"
)

// Spec parameterizes a PDN mesh. The zero value of any field takes the
// documented default; Build validates the result.
type Spec struct {
	NX int `json:"nx"` // grid nodes per row (required, ≥ 2)
	NY int `json:"ny"` // grid rows (required, ≥ 2)

	// Tech names the technology node supplying per-length R and C (and the
	// default VDD). Default "100nm".
	Tech string `json:"tech,omitempty"`

	// PitchMM is the grid segment length in millimeters. Default 0.1.
	PitchMM float64 `json:"pitch_mm,omitempty"`

	// LPerM overrides the per-length inductance (H/m). Default: the paper's
	// worst-case 5 nH/mm bound — PDN grids ride the thick top metal where
	// inductance matters most.
	LPerM float64 `json:"l_per_m,omitempty"`

	// C4 bump array: BumpNX×BumpNY sites spread evenly over the grid, each
	// tied to the supply through RBump + jω·LBump. Defaults: 4×4 bumps,
	// 40 mΩ, 72 pH (the DATE 2007 package model).
	BumpNX int     `json:"bump_nx,omitempty"`
	BumpNY int     `json:"bump_ny,omitempty"`
	RBump  float64 `json:"r_bump,omitempty"` // Ω
	LBump  float64 `json:"l_bump,omitempty"` // H

	// CNode is the per-node decoupling capacitance. Default: the technology
	// node's per-length capacitance times the segment length — the wire's
	// own capacitance standing in for distributed decap.
	CNode float64 `json:"c_node,omitempty"` // F

	// Load model for the IR-drop analysis: every node draws ILoad, and the
	// hotspot node at (HotX, HotY) draws IHot extra. Defaults: 0.1 mA per
	// node, 50 mA hotspot at the grid center.
	ILoad float64 `json:"i_load,omitempty"` // A per node
	IHot  float64 `json:"i_hot,omitempty"`  // A extra at the hotspot
	HotX  int     `json:"hot_x,omitempty"`
	HotY  int     `json:"hot_y,omitempty"`

	// VDD overrides the technology node's supply voltage.
	VDD float64 `json:"vdd,omitempty"` // V
}

// withDefaults validates s and fills defaulted fields.
func (s Spec) withDefaults() (Spec, error) {
	if s.NX < 2 || s.NY < 2 {
		return s, fmt.Errorf("pdn: grid must be at least 2x2, got %dx%d", s.NX, s.NY)
	}
	if s.Tech == "" {
		s.Tech = "100nm"
	}
	node, err := tech.ByName(s.Tech)
	if err != nil {
		return s, err
	}
	if s.PitchMM == 0 {
		s.PitchMM = 0.1
	}
	if s.PitchMM < 0 {
		return s, fmt.Errorf("pdn: negative pitch %g mm", s.PitchMM)
	}
	if s.LPerM == 0 {
		s.LPerM = tech.WorstCaseInductance
	}
	if s.BumpNX == 0 {
		s.BumpNX = 4
	}
	if s.BumpNY == 0 {
		s.BumpNY = 4
	}
	if s.BumpNX < 1 || s.BumpNY < 1 || s.BumpNX > s.NX || s.BumpNY > s.NY {
		return s, fmt.Errorf("pdn: bump array %dx%d does not fit grid %dx%d",
			s.BumpNX, s.BumpNY, s.NX, s.NY)
	}
	if s.RBump == 0 {
		s.RBump = 40e-3
	}
	if s.LBump == 0 {
		s.LBump = 72e-12
	}
	if s.RBump < 0 || s.LBump < 0 {
		return s, fmt.Errorf("pdn: negative bump impedance (R=%g, L=%g)", s.RBump, s.LBump)
	}
	seg := s.PitchMM * tech.MM
	if s.CNode == 0 {
		s.CNode = node.C * seg
	}
	if s.ILoad == 0 {
		s.ILoad = 0.1e-3
	}
	if s.IHot == 0 {
		s.IHot = 50e-3
	}
	if s.HotX == 0 && s.HotY == 0 {
		s.HotX, s.HotY = s.NX/2, s.NY/2
	}
	if s.HotX < 0 || s.HotX >= s.NX || s.HotY < 0 || s.HotY >= s.NY {
		return s, fmt.Errorf("pdn: hotspot (%d,%d) outside grid %dx%d", s.HotX, s.HotY, s.NX, s.NY)
	}
	if s.VDD == 0 {
		s.VDD = node.VDD
	}
	return s, nil
}

// Canonical validates s and returns it with every defaulted field made
// explicit — the form cache keys and logs should use, so two specs that
// build identical meshes canonicalize identically.
func (s Spec) Canonical() (Spec, error) { return s.withDefaults() }

// Mesh is a built PDN ready for analysis. Building compiles the DC
// conductance system once; the AC sweep builds its own (larger) systems in
// per-worker scratch.
type Mesh struct {
	Spec Spec
	N    int // NX*NY unknowns

	// Derived electrical values.
	SegLen float64 // segment length, m
	RSeg   float64 // per-segment resistance, Ω
	LSeg   float64 // per-segment inductance, H

	bumps []int // node indices of C4 bump sites

	// DC IR-drop system G·v = i (frozen pattern for refactorization).
	gTr *sparse.Triplet
	g   *sparse.CSC
	bDC []float64
}

// node maps grid coordinates to an unknown index.
func (m *Mesh) node(x, y int) int { return y*m.Spec.NX + x }

// Bumps returns the node indices of the C4 bump sites.
func (m *Mesh) Bumps() []int { return m.bumps }

// Build validates s and assembles the mesh and its DC system.
func Build(s Spec) (*Mesh, error) {
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	node, err := tech.ByName(s.Tech)
	if err != nil {
		return nil, err
	}
	m := &Mesh{Spec: s, N: s.NX * s.NY}
	m.SegLen = s.PitchMM * tech.MM
	m.RSeg = node.R * m.SegLen
	m.LSeg = s.LPerM * m.SegLen

	// Spread the bump array evenly: bump (i, j) sits at the center of its
	// cell of the BumpNX×BumpNY partition.
	m.bumps = make([]int, 0, s.BumpNX*s.BumpNY)
	for j := 0; j < s.BumpNY; j++ {
		for i := 0; i < s.BumpNX; i++ {
			bx := ((2*i + 1) * s.NX) / (2 * s.BumpNX)
			by := ((2*j + 1) * s.NY) / (2 * s.BumpNY)
			m.bumps = append(m.bumps, m.node(bx, by))
		}
	}

	m.buildDC()
	return m, nil
}

// buildDC stamps the DC conductance system: segment conductances between
// grid neighbors and bump conductances to the supply. The result is
// symmetric positive definite, so the engine's auto policy routes large
// meshes to IC(0)-preconditioned CG.
func (m *Mesh) buildDC() {
	s := m.Spec
	tr := sparse.NewTriplet(m.N)
	gSeg := 1 / m.RSeg
	for y := 0; y < s.NY; y++ {
		for x := 0; x < s.NX; x++ {
			i := m.node(x, y)
			if x+1 < s.NX {
				j := m.node(x+1, y)
				tr.Add(i, i, gSeg)
				tr.Add(j, j, gSeg)
				tr.Add(i, j, -gSeg)
				tr.Add(j, i, -gSeg)
			}
			if y+1 < s.NY {
				j := m.node(x, y+1)
				tr.Add(i, i, gSeg)
				tr.Add(j, j, gSeg)
				tr.Add(i, j, -gSeg)
				tr.Add(j, i, -gSeg)
			}
		}
	}
	gBump := 1 / s.RBump
	for _, i := range m.bumps {
		tr.Add(i, i, gBump)
	}
	m.gTr = tr
	m.g = tr.Compile()

	// RHS: bump sites source VDD through their conductance; every node
	// sinks its load current.
	m.bDC = make([]float64, m.N)
	for _, i := range m.bumps {
		m.bDC[i] += s.VDD * gBump
	}
	for i := range m.bDC {
		m.bDC[i] -= s.ILoad
	}
	m.bDC[m.node(s.HotX, s.HotY)] -= s.IHot
}

// IRResult reports a DC IR-drop analysis.
type IRResult struct {
	V []float64 `json:"-"` // node voltages (omitted from JSON: O(N))

	VDD       float64 `json:"vdd"`        // supply, V
	VMin      float64 `json:"v_min"`      // worst node voltage, V
	VMax      float64 `json:"v_max"`      // best node voltage, V
	WorstDrop float64 `json:"worst_drop"` // VDD - VMin, V
	AvgDrop   float64 `json:"avg_drop"`   // mean IR drop, V
	WorstX    int     `json:"worst_x"`    // grid location of the worst drop
	WorstY    int     `json:"worst_y"`

	Solver sparse.EngineStats `json:"solver"`
}

// SolveIR runs the DC IR-drop analysis through the sparse engine (auto
// policy: direct LU for small grids, IC(0)+CG at scale).
func (m *Mesh) SolveIR() (*IRResult, error) {
	return m.solveIR(sparse.EngineOpts{})
}

// solveIR is SolveIR with caller-controlled engine options (tests force
// policies; the server tightens budgets).
func (m *Mesh) solveIR(opts sparse.EngineOpts) (*IRResult, error) {
	eng := sparse.NewEngine(m.N, opts)
	if err := eng.Factorize(m.g); err != nil {
		return nil, fmt.Errorf("pdn: IR factorize: %w", err)
	}
	v := make([]float64, m.N)
	if err := eng.SolveInto(v, m.bDC); err != nil {
		return nil, fmt.Errorf("pdn: IR solve: %w", err)
	}
	res := &IRResult{V: v, VDD: m.Spec.VDD, VMin: math.Inf(1), VMax: math.Inf(-1)}
	sum := 0.0
	worst := -1
	for i, vi := range v {
		if vi < res.VMin {
			res.VMin, worst = vi, i
		}
		if vi > res.VMax {
			res.VMax = vi
		}
		sum += m.Spec.VDD - vi
	}
	res.WorstDrop = m.Spec.VDD - res.VMin
	res.AvgDrop = sum / float64(m.N)
	res.WorstX = worst % m.Spec.NX
	res.WorstY = worst / m.Spec.NX
	res.Solver = eng.Stats()
	return res, nil
}
