package pdn

import (
	"math"
	"testing"

	"rlcint/internal/sparse"
)

// Benchmark grid edges for the canonical mesh scales: 1e3 → 32×32 (1024
// nodes), 1e4 → 100×100, 1e5 → 316×316 (99 856 nodes). The 1e5 case is the
// acceptance bar: it must solve in seconds through the engine's CG path
// where natural-order direct LU is infeasible.
const (
	benchEdge1e3 = 32
	benchEdge1e4 = 100
	benchEdge1e5 = 316
)

func benchMesh(b *testing.B, edge int) *Mesh {
	b.Helper()
	m, err := Build(Spec{NX: edge, NY: edge, Tech: "100nm"})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchFactor measures a cold engine Factorize at the given scale: AMD
// ordering + numeric LU below the direct threshold, IC(0) preconditioner
// construction on the CG path above it. Custom metrics record the factor
// shape so BENCH snapshots carry the fill story, not just the time.
func benchFactor(b *testing.B, edge int) {
	m := benchMesh(b, edge)
	var eng *sparse.Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng = sparse.NewEngine(m.N, sparse.EngineOpts{})
		if err := eng.Factorize(m.g); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := eng.Stats(); st.Solver == "direct" {
		b.ReportMetric(st.Factor.FillRatio, "fill-ratio")
		b.ReportMetric(float64(st.Factor.NNZL+st.Factor.NNZU), "nnz(L+U)")
	}
}

// benchSolve measures the steady-state DC IR-drop solve with the
// factorization already in place — the per-solve cost a sweep or server pays.
func benchSolve(b *testing.B, edge int) {
	m := benchMesh(b, edge)
	eng := sparse.NewEngine(m.N, sparse.EngineOpts{})
	if err := eng.Factorize(m.g); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.N)
	if err := eng.SolveInto(x, m.bDC); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.SolveInto(x, m.bDC); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := eng.Stats(); st.Iterations > 0 {
		b.ReportMetric(float64(st.Iterations), "iters")
	}
}

func BenchmarkPDNFactor1e3(b *testing.B) { benchFactor(b, benchEdge1e3) }
func BenchmarkPDNFactor1e4(b *testing.B) { benchFactor(b, benchEdge1e4) }
func BenchmarkPDNFactor1e5(b *testing.B) { benchFactor(b, benchEdge1e5) }

func BenchmarkPDNSolve1e3(b *testing.B) { benchSolve(b, benchEdge1e3) }
func BenchmarkPDNSolve1e4(b *testing.B) { benchSolve(b, benchEdge1e4) }
func BenchmarkPDNSolve1e5(b *testing.B) { benchSolve(b, benchEdge1e5) }

// benchDirectFactor pins the ordering comparison the AMD pass exists for:
// full direct LU (symbolic + numeric) on the 1e4 mesh under the requested
// ordering. The natural-order case is benchmarked at 1e4 only — at 1e5 its
// fill makes a single factorization take minutes, which is exactly the
// regime the ordering and iterative paths remove.
func benchDirectFactor(b *testing.B, ord sparse.Ordering) {
	m := benchMesh(b, benchEdge1e4)
	var lu *sparse.LU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu = sparse.Workspace(m.N)
		lu.SetOrdering(ord)
		if err := lu.Factorize(m.g, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := lu.Stats()
	b.ReportMetric(st.FillRatio, "fill-ratio")
	b.ReportMetric(float64(st.NNZL+st.NNZU), "nnz(L+U)")
}

func BenchmarkPDNFactorDirectAMD1e4(b *testing.B) { benchDirectFactor(b, sparse.OrderAMD) }
func BenchmarkPDNFactorDirectNatural1e4(b *testing.B) {
	benchDirectFactor(b, sparse.OrderNatural)
}

// BenchmarkPDNImpedancePoint1e3 measures one AC frequency point on the 32×32
// mesh: frozen-triplet restamp, preconditioner/factor refresh, and the
// 2n-unknown real-equivalent solve — the unit of work an impedance sweep
// repeats per frequency.
func BenchmarkPDNImpedancePoint1e3(b *testing.B) {
	m := benchMesh(b, benchEdge1e3)
	probe := m.node(m.Spec.HotX, m.Spec.HotY)
	ws := &acScratch{
		m:     m,
		probe: probe,
		tr:    sparse.NewTriplet(2 * m.N),
		x:     make([]float64, 2*m.N),
		b:     make([]float64, 2*m.N),
		eng:   sparse.NewEngine(2*m.N, sparse.EngineOpts{Tol: 1e-9}),
	}
	ws.b[probe] = 1
	if _, err := ws.solveAt(1e8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk a 16-point frequency comb so every refresh sees new values.
		f := 1e6 * math.Exp(float64(i%16)*0.45)
		if _, err := ws.solveAt(f); err != nil {
			b.Fatal(err)
		}
	}
}
