package pdn

import (
	"math"
	"math/cmplx"
	"testing"

	"rlcint/internal/runctl"
	"rlcint/internal/sparse"
)

func testSpec(nx, ny int) Spec {
	return Spec{NX: nx, NY: ny, Tech: "100nm"}
}

// denseSolve solves the complex nodal system of a small mesh by Gaussian
// elimination — the independent reference for the sparse AC path.
func denseSolve(a [][]complex128, b []complex128) []complex128 {
	n := len(b)
	for k := 0; k < n; k++ {
		// Partial pivoting.
		piv := k
		for i := k + 1; i < n; i++ {
			if cmplx.Abs(a[i][k]) > cmplx.Abs(a[piv][k]) {
				piv = i
			}
		}
		a[k], a[piv] = a[piv], a[k]
		b[k], b[piv] = b[piv], b[k]
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			for j := k; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
			b[i] -= f * b[k]
		}
	}
	x := make([]complex128, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

// denseImpedance computes |Z(f)| at the probe of mesh m with a dense
// complex build that shares no code with the sparse path.
func denseImpedance(m *Mesh, f float64) float64 {
	n := m.N
	w := 2 * math.Pi * f
	a := make([][]complex128, n)
	for i := range a {
		a[i] = make([]complex128, n)
	}
	s := m.Spec
	zSeg := complex(m.RSeg, w*m.LSeg)
	ySeg := 1 / zSeg
	stamp := func(u, v int, y complex128) {
		a[u][u] += y
		if v >= 0 {
			a[v][v] += y
			a[u][v] -= y
			a[v][u] -= y
		}
	}
	for y := 0; y < s.NY; y++ {
		for x := 0; x < s.NX; x++ {
			i := y*s.NX + x
			if x+1 < s.NX {
				stamp(i, i+1, ySeg)
			}
			if y+1 < s.NY {
				stamp(i, i+s.NX, ySeg)
			}
		}
	}
	for i := 0; i < n; i++ {
		stamp(i, -1, complex(0, w*s.CNode))
	}
	yBump := 1 / complex(s.RBump, w*s.LBump)
	for _, i := range m.bumps {
		stamp(i, -1, yBump)
	}
	b := make([]complex128, n)
	probe := s.HotY*s.NX + s.HotX
	b[probe] = 1
	x := denseSolve(a, b)
	return cmplx.Abs(x[probe])
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{NX: 1, NY: 5}); err == nil {
		t.Error("1-wide grid accepted")
	}
	if _, err := Build(Spec{NX: 4, NY: 4, Tech: "13nm"}); err == nil {
		t.Error("unknown tech accepted")
	}
	if _, err := Build(Spec{NX: 4, NY: 4, BumpNX: 9}); err == nil {
		t.Error("bump array larger than grid accepted")
	}
	if _, err := Build(Spec{NX: 4, NY: 4, HotX: 7, HotY: 1}); err == nil {
		t.Error("hotspot outside grid accepted")
	}
	m, err := Build(testSpec(8, 6))
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 48 {
		t.Errorf("N = %d, want 48", m.N)
	}
	if len(m.Bumps()) != 16 {
		t.Errorf("bumps = %d, want 16 (4x4 default)", len(m.Bumps()))
	}
	if m.Spec.VDD != 1.2 {
		t.Errorf("VDD default = %g, want 1.2 (100nm)", m.Spec.VDD)
	}
}

// TestIRDropPhysics checks the DC solution behaves like a power grid: every
// node sits below VDD, the worst drop is at least the average, and the
// hotspot region is the worst spot on a uniform grid.
func TestIRDropPhysics(t *testing.T) {
	m, err := Build(testSpec(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveIR()
	if err != nil {
		t.Fatal(err)
	}
	if res.VMax >= m.Spec.VDD {
		t.Errorf("VMax %g not below VDD %g", res.VMax, m.Spec.VDD)
	}
	if res.VMin <= 0 || res.WorstDrop <= 0 {
		t.Errorf("implausible VMin %g / WorstDrop %g", res.VMin, res.WorstDrop)
	}
	if res.WorstDrop < res.AvgDrop {
		t.Errorf("worst drop %g below average %g", res.WorstDrop, res.AvgDrop)
	}
	// The hotspot draws 500x the per-node load; the worst drop must be there.
	if res.WorstX != m.Spec.HotX || res.WorstY != m.Spec.HotY {
		t.Errorf("worst drop at (%d,%d), hotspot at (%d,%d)",
			res.WorstX, res.WorstY, m.Spec.HotX, m.Spec.HotY)
	}
	if res.Solver.Solver == "" {
		t.Error("solver stats not populated")
	}
}

// TestIRKirchhoff verifies the DC solution satisfies the assembled system
// (residual check against the mesh's own conductance matrix).
func TestIRKirchhoff(t *testing.T) {
	m, err := Build(testSpec(12, 9))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.SolveIR()
	if err != nil {
		t.Fatal(err)
	}
	r := m.g.MulVec(res.V)
	for i := range r {
		if math.Abs(r[i]-m.bDC[i]) > 1e-8 {
			t.Fatalf("KCL residual %g at node %d", r[i]-m.bDC[i], i)
		}
	}
}

// TestIRSolverPolicies cross-checks the iterative and direct answers on the
// same mesh.
func TestIRSolverPolicies(t *testing.T) {
	m, err := Build(testSpec(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.solveIR(sparse.EngineOpts{Policy: sparse.PolicyDirect})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := m.solveIR(sparse.EngineOpts{Policy: sparse.PolicyCG, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if cg.Solver.Solver != "cg" || cg.Solver.Fallbacks != 0 {
		t.Fatalf("CG policy did not run CG: %+v", cg.Solver)
	}
	for i := range direct.V {
		if math.Abs(direct.V[i]-cg.V[i]) > 1e-9 {
			t.Fatalf("CG and direct differ at node %d: %g vs %g", i, direct.V[i], cg.V[i])
		}
	}
}

// TestImpedanceMatchesDense validates the sparse real-equivalent AC solve
// against an independent dense complex reference on a small mesh.
func TestImpedanceMatchesDense(t *testing.T) {
	m, err := Build(testSpec(6, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ImpedanceProfile(nil, ImpedanceOpts{FStart: 1e6, FStop: 1e9, Points: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("got %d points, want 7", len(res.Points))
	}
	for _, p := range res.Points {
		want := denseImpedance(m, p.F)
		if d := math.Abs(p.Z - want); d > 1e-6*math.Max(want, 1e-12) {
			t.Errorf("|Z(%g)| = %g, dense reference %g", p.F, p.Z, want)
		}
	}
	if res.Peak.Z <= 0 {
		t.Error("no resonance peak found")
	}
}

// TestImpedanceWorkerIndependence pins the batch contract: worker count
// never changes the answer.
func TestImpedanceWorkerIndependence(t *testing.T) {
	m, err := Build(testSpec(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	one, err := m.ImpedanceProfile(nil, ImpedanceOpts{Points: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := m.ImpedanceProfile(nil, ImpedanceOpts{Points: 12, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range one.Points {
		if one.Points[i] != many.Points[i] {
			t.Fatalf("point %d differs across worker counts: %+v vs %+v",
				i, one.Points[i], many.Points[i])
		}
	}
}

// TestImpedanceCancellation checks the sweep honors run control.
func TestImpedanceCancellation(t *testing.T) {
	m, err := Build(testSpec(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctl := runctl.New(nil, runctl.Limits{MaxIters: 3})
	_, err = m.ImpedanceProfile(ctl, ImpedanceOpts{Points: 64})
	if err == nil {
		t.Fatal("iteration-budget exhaustion did not surface")
	}
}
