package pdn

import (
	"fmt"
	"math"

	"rlcint/internal/batch"
	"rlcint/internal/runctl"
	"rlcint/internal/sparse"
)

// ImpedanceOpts configure an AC impedance-profile sweep.
type ImpedanceOpts struct {
	FStart float64 `json:"f_start"` // Hz (default 1e5)
	FStop  float64 `json:"f_stop"`  // Hz (default 1e9)
	Points int     `json:"points"`  // log-spaced samples (default 60)

	// Probe is where the 1 A AC test current is injected and the voltage
	// observed. (0,0) and negative coordinates select the hotspot node,
	// mirroring the Spec.HotX/HotY convention.
	ProbeX int `json:"probe_x"`
	ProbeY int `json:"probe_y"`

	Workers int `json:"workers,omitempty"` // batch workers (≤0 → GOMAXPROCS)
}

func (o ImpedanceOpts) withDefaults(m *Mesh) (ImpedanceOpts, error) {
	if o.FStart == 0 {
		o.FStart = 1e5
	}
	if o.FStop == 0 {
		o.FStop = 1e9
	}
	if o.FStart <= 0 || o.FStop <= o.FStart {
		return o, fmt.Errorf("pdn: bad frequency range [%g, %g]", o.FStart, o.FStop)
	}
	if o.Points == 0 {
		o.Points = 60
	}
	if o.Points < 2 {
		return o, fmt.Errorf("pdn: impedance sweep needs at least 2 points, got %d", o.Points)
	}
	if o.ProbeX < 0 || o.ProbeY < 0 || (o.ProbeX == 0 && o.ProbeY == 0) {
		o.ProbeX, o.ProbeY = m.Spec.HotX, m.Spec.HotY
	}
	if o.ProbeX >= m.Spec.NX || o.ProbeY >= m.Spec.NY {
		return o, fmt.Errorf("pdn: probe (%d,%d) outside grid %dx%d",
			o.ProbeX, o.ProbeY, m.Spec.NX, m.Spec.NY)
	}
	return o, nil
}

// ImpedancePoint is one sample of the impedance profile.
type ImpedancePoint struct {
	F float64 `json:"f"` // Hz
	Z float64 `json:"z"` // |Z(f)| at the probe node, Ω
}

// ImpedanceResult is the full profile plus its resonance peak — the number
// PDN design actually optimizes against.
type ImpedanceResult struct {
	Points []ImpedancePoint `json:"points"`
	Peak   ImpedancePoint   `json:"peak"`
}

// acScratch is the per-worker state of an impedance sweep: one frozen
// real-equivalent system and one sparse engine, refactorized (not rebuilt)
// as the sweep walks the frequency axis.
type acScratch struct {
	m     *Mesh
	probe int
	tr    *sparse.Triplet
	a     *sparse.CSC
	eng   *sparse.Engine
	x, b  []float64
	ready bool
}

// stampY stamps the complex admittance g + j·b between nodes u and v (v < 0
// means ground) into the real 2n×2n equivalent
//
//	[ Gr  -Gi ] [Vr]   [Ir]
//	[ Gi   Gr ] [Vi] = [Ii]
//
// so one real factorization solves the complex system.
func (ws *acScratch) stampY(u, v int, g, b float64) {
	n := ws.m.N
	// Zero-valued stamps still shape the frozen pattern on the first pass,
	// which keeps every frequency on one shared structure.
	at := func(r, c int, val float64) {
		ws.tr.Add(r, c, val)     // Gr block
		ws.tr.Add(r+n, c+n, val) // Gr block (imaginary row)
	}
	atIm := func(r, c int, val float64) {
		ws.tr.Add(r, c+n, -val) // -Gi block
		ws.tr.Add(r+n, c, val)  // +Gi block
	}
	at(u, u, g)
	atIm(u, u, b)
	if v >= 0 {
		at(v, v, g)
		atIm(v, v, b)
		at(u, v, -g)
		at(v, u, -g)
		atIm(u, v, -b)
		atIm(v, u, -b)
	}
}

// assemble stamps the full mesh admittance at angular frequency w. The
// stamp sequence is identical at every frequency, so after the first
// Compile the frozen triplet replays in place with no allocation.
func (ws *acScratch) assemble(w float64) {
	m := ws.m
	s := m.Spec
	ws.tr.Reset()
	// RL segments: y = 1/(R + jwL).
	den := m.RSeg*m.RSeg + w*w*m.LSeg*m.LSeg
	gSeg := m.RSeg / den
	bSeg := -w * m.LSeg / den
	for y := 0; y < s.NY; y++ {
		for x := 0; x < s.NX; x++ {
			i := m.node(x, y)
			if x+1 < s.NX {
				ws.stampY(i, m.node(x+1, y), gSeg, bSeg)
			}
			if y+1 < s.NY {
				ws.stampY(i, m.node(x, y+1), gSeg, bSeg)
			}
		}
	}
	// Per-node decap to ground: y = jwC.
	for i := 0; i < m.N; i++ {
		ws.stampY(i, -1, 0, w*s.CNode)
	}
	// C4 bumps to the (AC-grounded) supply: y = 1/(RBump + jwLBump).
	denB := s.RBump*s.RBump + w*w*s.LBump*s.LBump
	for _, i := range m.bumps {
		ws.stampY(i, -1, s.RBump/denB, -w*s.LBump/denB)
	}
}

// solveAt assembles and solves one frequency point, returning |Z| at the
// probe.
func (ws *acScratch) solveAt(f float64) (ImpedancePoint, error) {
	w := 2 * math.Pi * f
	ws.assemble(w)
	if !ws.ready {
		ws.a = ws.tr.Compile()
		if err := ws.eng.Factorize(ws.a); err != nil {
			return ImpedancePoint{}, fmt.Errorf("pdn: impedance factorize at %g Hz: %w", f, err)
		}
		ws.ready = true
	} else if err := ws.eng.Refactorize(ws.a); err != nil {
		return ImpedancePoint{}, fmt.Errorf("pdn: impedance refactorize at %g Hz: %w", f, err)
	}
	if err := ws.eng.SolveInto(ws.x, ws.b); err != nil {
		return ImpedancePoint{}, fmt.Errorf("pdn: impedance solve at %g Hz: %w", f, err)
	}
	n := ws.m.N
	return ImpedancePoint{F: f, Z: math.Hypot(ws.x[ws.probe], ws.x[ws.probe+n])}, nil
}

// ImpedanceProfile sweeps |Z(f)| at the probe node over log-spaced
// frequencies through the batched sweep engine: each worker owns one frozen
// system + engine pair and walks its tile refactorizing in place.
func (m *Mesh) ImpedanceProfile(ctl *runctl.Controller, o ImpedanceOpts) (*ImpedanceResult, error) {
	o, err := o.withDefaults(m)
	if err != nil {
		return nil, err
	}
	probe := m.node(o.ProbeX, o.ProbeY)
	logStep := math.Log(o.FStop/o.FStart) / float64(o.Points-1)

	newScratch := func() *acScratch {
		ws := &acScratch{
			m:     m,
			probe: probe,
			tr:    sparse.NewTriplet(2 * m.N),
			x:     make([]float64, 2*m.N),
			b:     make([]float64, 2*m.N),
			// The real 2n×2n equivalent is structurally unsymmetric in the
			// Gi blocks, so auto policy routes large systems to ILU(0)+GMRES.
			eng: sparse.NewEngine(2*m.N, sparse.EngineOpts{Tol: 1e-9}),
		}
		ws.b[probe] = 1 // 1 A test current, real phase
		return ws
	}
	pts, err := batch.Run(ctl, o.Points, batch.Options{Workers: o.Workers},
		newScratch,
		func(ws *acScratch, i int, warm bool) (ImpedancePoint, error) {
			if err := ctl.Tick("pdn.impedance"); err != nil {
				return ImpedancePoint{}, err
			}
			f := o.FStart * math.Exp(float64(i)*logStep)
			return ws.solveAt(f)
		})
	if err != nil {
		return nil, err
	}
	res := &ImpedanceResult{Points: pts}
	for _, p := range pts {
		if p.Z > res.Peak.Z {
			res.Peak = p
		}
	}
	return res, nil
}
