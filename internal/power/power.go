// Package power models the power drawn by a buffered RLC interconnect and
// optimizes the delay/power tradeoff the paper's delay-only methodology
// leaves on the table.
//
// Per repeater stage it composes three standard terms:
//
//   - dynamic switching power α·C·V²·f over the stamped stage capacitance
//     (the line segment plus the repeater input and parasitic capacitance —
//     exactly the capacitance the delay model stamps);
//   - short-circuit power from the input slew via Veendrick's formula, the
//     slew taken from the same two-pole step response the delay optimizer
//     uses (a repeater's input transition is the previous identical stage's
//     output transition);
//   - subthreshold leakage from the technology table's minimum-device
//     off-current, scaled by the repeater size.
//
// On top of the estimator, pareto.go traces the delay/power Pareto front
// with warm-start continuation and plan.go builds mixed-scheme repeater
// plans that trade a bounded delay penalty for power (the RIP result).
package power

import (
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// Params are the workload parameters of the power model: how often the net
// switches. They are inputs a technology table cannot supply.
type Params struct {
	// Alpha is the switching activity factor: the probability that the net
	// completes a full charge/discharge cycle in a clock period. In (0, 1]
	// (1 = clock-like toggling).
	Alpha float64
	// Freq is the clock frequency, Hz.
	Freq float64
}

// Validate rejects out-of-domain workload parameters (including NaN/Inf)
// with a diag.ErrDomain-matchable error.
func (p Params) Validate() error {
	if err := diag.CheckFinite("power.Params",
		[]string{"alpha", "freq"}, []float64{p.Alpha, p.Freq}); err != nil {
		return err
	}
	if !(p.Alpha > 0) || p.Alpha > 1 {
		return diag.Domainf("power.Params", "activity factor alpha=%g outside (0,1]", p.Alpha)
	}
	if !(p.Freq > 0) {
		return diag.Domainf("power.Params", "frequency f=%g must be positive", p.Freq)
	}
	return nil
}

// Breakdown is the power drawn by one repeater stage (the size-k repeater
// plus its length-h line segment), in watts.
type Breakdown struct {
	Dynamic      float64 // α·C_stage·V²·f switching power, W
	ShortCircuit float64 // Veendrick crowbar power, W
	Leakage      float64 // subthreshold leakage k·Ioff·VDD, W
}

// Total is the stage's total power, W.
func (b Breakdown) Total() float64 { return b.Dynamic + b.ShortCircuit + b.Leakage }

// Model binds a technology node, a line, and the workload parameters into a
// per-stage power estimator. Build with New, which validates.
type Model struct {
	Node   tech.Node
	Line   tline.Line
	Device repeater.MinDevice
	Params Params
}

// New builds a power model for the node's top-metal line with per-unit-
// length inductance l (H/m). The node must carry power parameters (Vt,
// Ioff); the paper's tabulated nodes do.
func New(node tech.Node, l float64, prm Params) (Model, error) {
	if err := node.Validate(); err != nil {
		return Model{}, err
	}
	if err := diag.CheckFinite("power.New", []string{"l"}, []float64{l}); err != nil {
		return Model{}, err
	}
	if l < 0 {
		return Model{}, diag.Domainf("power.New", "negative line inductance l=%g", l)
	}
	if node.Vt <= 0 {
		return Model{}, diag.Domainf("power.New", "node %s lacks power parameters (Vt=0)", node.Name)
	}
	if err := prm.Validate(); err != nil {
		return Model{}, err
	}
	return Model{
		Node:   node,
		Line:   tline.Line{R: node.R, L: l, C: node.C},
		Device: repeater.FromTech(node),
		Params: prm,
	}, nil
}

// SwitchedCap returns the capacitance one stage charges and discharges per
// switching cycle: the line segment plus the repeater input and parasitic
// capacitance — the same capacitance the two-pole delay model stamps.
func (m Model) SwitchedCap(h, k float64) float64 {
	return m.Line.C*h + (m.Device.C0+m.Device.Cp)*k
}

// Beta returns the effective transconductance (A/V²) of a size-k repeater,
// inferred from the minimum device's output resistance: in saturation the
// drive current Rs models is ≈ β0/2·(VDD−Vt)², so β0 ≈ 1/(Rs·(VDD−Vt))
// reproduces the tabulated Rs at full gate drive. Scales linearly with k.
func (m Model) Beta(k float64) float64 {
	return k / (m.Device.Rs * (m.Node.VDD - m.Node.Vt))
}

// Slew returns the 10–90% output transition time of one (h, k) stage from
// its two-pole step response — the input slew seen by the next identical
// repeater.
func (m Model) Slew(h, k float64) (float64, error) {
	if h <= 0 || k <= 0 || math.IsNaN(h) || math.IsNaN(k) {
		return 0, diag.Domainf("power.Slew", "requires positive h, k; got h=%g k=%g", h, k)
	}
	tp, err := pade.FromStage(m.Device.Stage(m.Line, h, k))
	if err != nil {
		return 0, err
	}
	d10, err := tp.Delay(0.1)
	if err != nil {
		return 0, err
	}
	d90, err := tp.Delay(0.9)
	if err != nil {
		return 0, err
	}
	return d90.Tau - d10.Tau, nil
}

// Stage estimates the power of one repeater stage at sizing (h, k).
//
// Dynamic: α·f·C_stage·VDD² (one full charge/discharge cycle dissipates
// C·V²). Short-circuit: Veendrick's E_sc = (β/12)·(VDD−2Vt)³·t_slew per
// transition, two transitions per cycle, with t_slew the 10–90% output
// transition of the preceding identical stage. Leakage: k·Ioff·VDD,
// independent of activity.
func (m Model) Stage(h, k float64) (Breakdown, error) {
	slew, err := m.Slew(h, k)
	if err != nil {
		return Breakdown{}, err
	}
	v := m.Node.VDD
	af := m.Params.Alpha * m.Params.Freq
	esc := m.Beta(k) / 12 * math.Pow(v-2*m.Node.Vt, 3) * slew
	return Breakdown{
		Dynamic:      af * m.SwitchedCap(h, k) * v * v,
		ShortCircuit: af * 2 * esc,
		Leakage:      k * m.Node.Ioff * v,
	}, nil
}

// PerLength returns the total power per unit line length at sizing (h, k),
// W/m — the power counterpart of the optimizer's τ/h objective.
func (m Model) PerLength(h, k float64) (float64, error) {
	b, err := m.Stage(h, k)
	if err != nil {
		return 0, err
	}
	return b.Total() / h, nil
}

// EnergyFromWave integrates instantaneous power v·i over a sampled waveform
// by the trapezoidal rule, returning joules. It is the measurement half of
// the model-vs-transient differential validation: integrate the source
// energy of a simulated switching transition and compare against
// SwitchedCap·VDD².
func EnergyFromWave(t, v, i []float64) float64 {
	n := len(t)
	if len(v) < n {
		n = len(v)
	}
	if len(i) < n {
		n = len(i)
	}
	e := 0.0
	for j := 1; j < n; j++ {
		e += 0.5 * (v[j]*i[j] + v[j-1]*i[j-1]) * (t[j] - t[j-1])
	}
	return e
}
