package power

import (
	"context"
	"fmt"
	"math"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// PlanOptions configure the mixed-scheme power planner.
type PlanOptions struct {
	// MaxPenalty is the allowed end-to-end delay penalty versus the
	// delay-optimal plan, as a fraction (default 0.05 = 5%, the RIP
	// operating point).
	MaxPenalty float64
	// Front configures the Pareto-front trace the planner draws its
	// candidate schemes from.
	Front FrontOptions
}

func (o PlanOptions) maxPenalty() float64 {
	if o.MaxPenalty > 0 {
		return o.MaxPenalty
	}
	return 0.05
}

// SchemeUse is one contiguous run of identically-sized repeater stages
// inside a mixed plan.
type SchemeUse struct {
	Stages   int
	H        float64 // realized segment length, m
	K        float64 // repeater size
	StageTau float64 // per-stage delay, s
	Stage    Breakdown
}

// Plan is a power-aware realizable repeater plan: at most two repeater
// schemes drawn from the Pareto front, split along the net to minimize
// total power under a bounded delay penalty — the RIP mixed-scheme result.
type Plan struct {
	Length  float64
	Schemes []SchemeUse // 1 or 2 runs, in listed order along the net
	Delay   float64     // end-to-end delay, s
	Power   float64     // total power, W

	// Baseline is the delay-optimal integer-stage plan (core.PlanLine) the
	// penalty and saving are measured against.
	Baseline      core.LinePlan
	BaselinePower float64 // total power of the baseline plan, W
	PowerSaved    float64 // 1 − Power/BaselinePower
	DelayPenalty  float64 // Delay/Baseline.Total − 1 (≤ MaxPenalty)

	// Front is the traced Pareto front the schemes were drawn from.
	Front []FrontPoint
}

// PlanPower builds a power-minimal repeater plan for a net of total length
// L (meters) whose end-to-end delay stays within MaxPenalty of the
// delay-optimal plan. It traces the delay/power Pareto front, then searches
// integer-stage splits of the net across every pair of front schemes (one
// kept at its native segment length, the other stretched to absorb the
// remainder), keeping the feasible split with the least total power.
// Single-scheme plans are members of the search space, so the result never
// loses to plain rounding of one front point.
func PlanPower(ctx context.Context, m Model, f, L float64, opts PlanOptions) (Plan, error) {
	if err := diag.CheckFinite("power.PlanPower", []string{"L"}, []float64{L}); err != nil {
		return Plan{}, err
	}
	if L <= 0 {
		return Plan{}, diag.Domainf("power.PlanPower", "requires positive length, got %g", L)
	}
	if math.IsNaN(opts.MaxPenalty) || math.IsInf(opts.MaxPenalty, 0) || opts.MaxPenalty < 0 {
		return Plan{}, diag.Domainf("power.PlanPower", "max penalty %g must be finite and non-negative", opts.MaxPenalty)
	}
	prob := core.Problem{Device: m.Device, Line: m.Line, F: f, Limits: opts.Front.Limits}
	base, err := core.PlanLineCtx(ctx, prob, L)
	if err != nil {
		return Plan{}, err
	}
	baseStage, err := m.Stage(base.H, base.K)
	if err != nil {
		return Plan{}, err
	}
	basePower := float64(base.Stages) * baseStage.Total()

	front, err := ParetoFront(ctx, m, f, opts.Front)
	if err != nil {
		return Plan{}, err
	}
	ctl := runctl.New(ctx, opts.Front.Limits)
	tMax := (1 + opts.maxPenalty()) * base.Total

	type run struct {
		n    int
		h, k float64
		tau  float64
		br   Breakdown
	}
	bestPower := math.Inf(1)
	bestDelay := math.Inf(1)
	var bestA, bestB run

	// evalAt measures one stage of scheme (h, k); infeasible stages are
	// skipped rather than fatal.
	evalAt := func(h, k float64) (tau float64, br Breakdown, ok bool) {
		_, d, err := prob.Eval(h, k)
		if err != nil {
			return 0, Breakdown{}, false
		}
		br, err = m.Stage(h, k)
		if err != nil {
			return 0, Breakdown{}, false
		}
		return d.Tau, br, true
	}
	consider := func(a, b run) {
		delay := float64(a.n)*a.tau + float64(b.n)*b.tau
		power := float64(a.n)*a.br.Total() + float64(b.n)*b.br.Total()
		if delay > tMax {
			return
		}
		if power < bestPower || (power == bestPower && delay < bestDelay) {
			bestPower, bestDelay = power, delay
			bestA, bestB = a, b
		}
	}

	// The delay-optimal baseline is always in the search space, so the plan
	// is feasible for any penalty budget ≥ 0 and never loses to the
	// baseline on power.
	consider(run{n: base.Stages, h: base.H, k: base.K, tau: base.StageTau, br: baseStage}, run{})

	for i, A := range front {
		if err := ctl.Tick("power.PlanPower"); err != nil {
			return Plan{}, err
		}
		maxNA := int(L / A.H)
		if maxNA > 4096 {
			continue // degenerate scheme, absurd stage count
		}
		for nA := 0; nA <= maxNA; nA++ {
			// Pure-B candidates (nA = 0) are scheme-A independent; visit
			// them once.
			if nA == 0 && i > 0 {
				continue
			}
			runA := run{n: nA, h: A.H, k: A.K, tau: A.Tau, br: A.Stage}
			aDelay := float64(nA) * A.Tau
			aPower := float64(nA) * A.Stage.Total()
			if aDelay > tMax || aPower >= bestPower {
				break // both grow monotonically in nA
			}
			rem := L - float64(nA)*A.H
			if rem <= 1e-9*L {
				// Scheme A alone covers the net (within rounding dust).
				consider(runA, run{})
				continue
			}
			for _, B := range front {
				nIdeal := rem / B.H
				for _, nB := range []int{int(math.Floor(nIdeal)), int(math.Ceil(nIdeal))} {
					if nB < 1 || nB > 4096 {
						continue
					}
					hB := rem / float64(nB)
					// Keep the stretched scheme near its native segment
					// length; far outside, its k is no longer meaningful.
					if hB < B.H/3 || hB > 3*B.H {
						continue
					}
					tauB, brB, ok := evalAt(hB, B.K)
					if !ok {
						continue
					}
					consider(runA, run{n: nB, h: hB, k: B.K, tau: tauB, br: brB})
				}
			}
		}
	}
	if math.IsInf(bestPower, 1) {
		return Plan{}, fmt.Errorf("power: PlanPower found no feasible plan for L=%g within %.1f%% of the delay optimum",
			L, 100*opts.maxPenalty())
	}

	plan := Plan{
		Length: L, Delay: bestDelay, Power: bestPower,
		Baseline: base, BaselinePower: basePower,
		PowerSaved:   1 - bestPower/basePower,
		DelayPenalty: bestDelay/base.Total - 1,
		Front:        front,
	}
	for _, r := range []run{bestA, bestB} {
		if r.n > 0 {
			plan.Schemes = append(plan.Schemes, SchemeUse{
				Stages: r.n, H: r.h, K: r.k, StageTau: r.tau, Stage: r.br,
			})
		}
	}
	return plan, nil
}
