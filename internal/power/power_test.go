package power

import (
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/repeater"
	"rlcint/internal/spice"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func testModel(t *testing.T) Model {
	t.Helper()
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := Params{Alpha: 0.2, Freq: 2e9}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Alpha: 0, Freq: 1e9},
		{Alpha: -0.1, Freq: 1e9},
		{Alpha: 1.5, Freq: 1e9},
		{Alpha: math.NaN(), Freq: 1e9},
		{Alpha: math.Inf(1), Freq: 1e9},
		{Alpha: 0.2, Freq: 0},
		{Alpha: 0.2, Freq: -1e9},
		{Alpha: 0.2, Freq: math.NaN()},
		{Alpha: 0.2, Freq: math.Inf(1)},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("params %+v: want ErrDomain, got %v", p, err)
		}
	}
}

func TestNewValidates(t *testing.T) {
	prm := Params{Alpha: 0.2, Freq: 1e9}
	if _, err := New(tech.Node100(), -1e-6, prm); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("negative inductance: want ErrDomain, got %v", err)
	}
	if _, err := New(tech.Node100(), math.NaN(), prm); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NaN inductance: want ErrDomain, got %v", err)
	}
	if _, err := New(tech.Node100(), 2e-6, Params{Alpha: 2, Freq: 1e9}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("bad params: want ErrDomain, got %v", err)
	}
	bare := tech.Node100()
	bare.Vt = 0 // hand-built node without power parameters
	if _, err := New(bare, 2e-6, prm); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("Vt-less node: want ErrDomain, got %v", err)
	}
}

func TestNodesCarryPowerParams(t *testing.T) {
	for _, n := range []tech.Node{tech.Node250(), tech.Node100(), tech.Node100WithEps250()} {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		if n.Vt <= 0 || 2*n.Vt >= n.VDD || n.Ioff <= 0 {
			t.Errorf("%s: power params Vt=%g Ioff=%g inconsistent with VDD=%g", n.Name, n.Vt, n.Ioff, n.VDD)
		}
	}
	// The interpolated trajectory must carry them too.
	n, err := tech.InterpolateNode(150e-9)
	if err != nil {
		t.Fatal(err)
	}
	if n.Vt <= 0 || n.Ioff <= 0 {
		t.Errorf("interpolated node lacks power params: Vt=%g Ioff=%g", n.Vt, n.Ioff)
	}
}

func TestStageBreakdown(t *testing.T) {
	m := testModel(t)
	h, k := 0.015, 200.0
	b, err := m.Stage(h, k)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dynamic <= 0 || b.ShortCircuit <= 0 || b.Leakage <= 0 {
		t.Fatalf("non-positive power terms: %+v", b)
	}
	// Dynamic and leakage have closed forms the estimator must reproduce
	// exactly.
	v := m.Node.VDD
	wantDyn := m.Params.Alpha * m.Params.Freq * (m.Line.C*h + (m.Device.C0+m.Device.Cp)*k) * v * v
	if math.Abs(b.Dynamic-wantDyn) > 1e-12*wantDyn {
		t.Errorf("dynamic = %g, want %g", b.Dynamic, wantDyn)
	}
	wantLeak := k * m.Node.Ioff * v
	if math.Abs(b.Leakage-wantLeak) > 1e-12*wantLeak {
		t.Errorf("leakage = %g, want %g", b.Leakage, wantLeak)
	}
	if tot := b.Total(); math.Abs(tot-(b.Dynamic+b.ShortCircuit+b.Leakage)) > 1e-15*tot {
		t.Errorf("total mismatch")
	}
	// Dynamic power is the dominant term for a realistic global wire.
	if b.Dynamic < b.ShortCircuit || b.Dynamic < b.Leakage {
		t.Errorf("dynamic should dominate: %+v", b)
	}
	// Per-length consistency.
	pl, err := m.PerLength(h, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl-b.Total()/h) > 1e-12*pl {
		t.Errorf("PerLength = %g, want %g", pl, b.Total()/h)
	}
	// Domain rejection.
	if _, err := m.Stage(-1, k); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("negative h: want ErrDomain, got %v", err)
	}
	if _, err := m.Stage(h, math.NaN()); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NaN k: want ErrDomain, got %v", err)
	}
}

func TestSlewShrinksWithDriveStrength(t *testing.T) {
	m := testModel(t)
	s1, err := m.Slew(0.015, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Slew(0.015, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !(s1 > 0 && s2 > 0 && s2 < s1) {
		t.Errorf("slew should be positive and shrink with k: k=100 → %g, k=300 → %g", s1, s2)
	}
}

// TestEnergyMatchesTransient is the model-vs-simulation differential: the
// dynamic term's switched capacitance claims one full charge/discharge cycle
// of a stage draws SwitchedCap·VDD² from the rail. Build the Fig10-class
// stage circuit (switching rail behind the repeater's output resistance,
// its parasitic capacitance, the discretized RLC ladder, and the identical
// receiver's input capacitance), simulate a settled square-wave cycle with
// the full transient solver, and integrate the source energy.
func TestEnergyMatchesTransient(t *testing.T) {
	node := tech.Node100()
	m, err := New(node, 2e-6, Params{Alpha: 1, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := repeater.RCOptimal(m.Device, tline.Line{R: node.R, C: node.C})
	if err != nil {
		t.Fatal(err)
	}
	h, k := rc.H, rc.K
	rs, cpk, clk := m.Device.Scaled(k)

	tau, err := m.Slew(h, k)
	if err != nil {
		t.Fatal(err)
	}
	period := 50 * tau // full settle at both rails each half-cycle
	dt := period / 12000

	ckt := spice.New()
	src := ckt.Node("src")
	out := ckt.Node("out")
	end := ckt.Node("end")
	vs, err := ckt.AddV(src, spice.Ground, spice.Pulse{
		V0: 0, V1: node.VDD,
		Rise: dt / 10, Fall: dt / 10,
		Width: period/2 - dt/10, Period: period,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddR(src, out, rs); err != nil {
		t.Fatal(err)
	}
	if err := ckt.AddC(out, spice.Ground, cpk); err != nil {
		t.Fatal(err)
	}
	const sections = 24
	ln := tline.Line{R: node.R, L: 2e-6, C: node.C}
	prev := out
	for i, s := range ln.Ladder(h, sections) {
		var next spice.NodeID
		if i == sections-1 {
			next = end
		} else {
			next = ckt.Node("n" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		}
		mid := ckt.Node("m" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		if err := ckt.AddR(prev, mid, s.R); err != nil {
			t.Fatal(err)
		}
		if _, err := ckt.AddL(mid, next, s.L); err != nil {
			t.Fatal(err)
		}
		if err := ckt.AddC(next, spice.Ground, s.C); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	if err := ckt.AddC(end, spice.Ground, clk); err != nil {
		t.Fatal(err)
	}

	res, err := ckt.Transient(spice.TranOpts{
		TStop: 3 * period, DT: dt, NoReduction: true,
	},
		spice.NodeProbe{Name: "vsrc", ID: src},
		spice.SourceCurrentProbe{Name: "isrc", V: vs},
	)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Signal("vsrc")
	if err != nil {
		t.Fatal(err)
	}
	i, err := res.Signal("isrc")
	if err != nil {
		t.Fatal(err)
	}
	// Integrate the settled cycle [2T, 3T).
	lo, hi := 0, len(res.T)
	for j, tt := range res.T {
		if tt < 2*period {
			lo = j + 1
		}
	}
	eCycle := math.Abs(EnergyFromWave(res.T[lo:hi], v[lo:hi], i[lo:hi]))

	want := m.SwitchedCap(h, k) * node.VDD * node.VDD
	if rel := math.Abs(eCycle-want) / want; rel > 0.02 {
		t.Errorf("transient cycle energy %.4e J vs model %.4e J (rel %.3f > 2%%)", eCycle, want, rel)
	}
}

func TestEnergyFromWave(t *testing.T) {
	// Constant 2 V · 3 A over 5 s = 30 J.
	ts := []float64{0, 1, 2.5, 5}
	v := []float64{2, 2, 2, 2}
	i := []float64{3, 3, 3, 3}
	if e := EnergyFromWave(ts, v, i); math.Abs(e-30) > 1e-12 {
		t.Errorf("EnergyFromWave = %g, want 30", e)
	}
	if e := EnergyFromWave(nil, nil, nil); e != 0 {
		t.Errorf("empty waveform: %g", e)
	}
}
