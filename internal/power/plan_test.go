package power

import (
	"context"
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/tech"
)

// TestPlanPowerRIPClaim reproduces the RIP mixed-scheme result on the
// paper's 100 nm global wire: a repeater plan drawn from the Pareto front
// saves ≥15% total power versus the delay-optimal plan while staying within
// the 5% delay penalty budget.
func TestPlanPowerRIPClaim(t *testing.T) {
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanPower(context.Background(), m, frontF, 0.03, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DelayPenalty > 0.05+1e-12 {
		t.Errorf("delay penalty %.4f exceeds the 5%% budget", plan.DelayPenalty)
	}
	if plan.PowerSaved < 0.15 {
		t.Errorf("power saved %.4f < 0.15 — the RIP claim does not reproduce", plan.PowerSaved)
	}
	t.Logf("RIP claim: %.2f%% power saved at %.2f%% delay penalty (baseline %d stages)",
		100*plan.PowerSaved, 100*plan.DelayPenalty, plan.Baseline.Stages)
}

// TestPlanPowerConsistency: the plan's aggregates must follow from its
// scheme runs, and the runs must tile the net exactly.
func TestPlanPowerConsistency(t *testing.T) {
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	const L = 0.02
	plan, err := PlanPower(context.Background(), m, frontF, L, PlanOptions{MaxPenalty: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Schemes) < 1 || len(plan.Schemes) > 2 {
		t.Fatalf("plan has %d schemes, want 1 or 2", len(plan.Schemes))
	}
	var length, delay, pow float64
	for _, s := range plan.Schemes {
		if s.Stages < 1 || s.H <= 0 || s.K <= 0 {
			t.Errorf("degenerate scheme %+v", s)
		}
		length += float64(s.Stages) * s.H
		delay += float64(s.Stages) * s.StageTau
		pow += float64(s.Stages) * s.Stage.Total()
	}
	if math.Abs(length-L) > 1e-6*L {
		t.Errorf("schemes cover %.9g m of a %.9g m net", length, L)
	}
	if relDiff(delay, plan.Delay) > 1e-12 {
		t.Errorf("delay aggregate mismatch: %g vs %g", delay, plan.Delay)
	}
	if relDiff(pow, plan.Power) > 1e-12 {
		t.Errorf("power aggregate mismatch: %g vs %g", pow, plan.Power)
	}
	if plan.Delay > (1+0.03)*plan.Baseline.Total*(1+1e-12) {
		t.Errorf("plan delay %g violates the 3%% budget over baseline %g", plan.Delay, plan.Baseline.Total)
	}
	// The planner must never lose to the delay-optimal baseline on power.
	if plan.Power > plan.BaselinePower*(1+1e-12) {
		t.Errorf("plan power %g exceeds baseline %g", plan.Power, plan.BaselinePower)
	}
	if len(plan.Front) == 0 {
		t.Errorf("plan is missing its front trace")
	}
}

// TestPlanPowerZeroPenalty: with no delay slack the planner still returns a
// feasible plan (the baseline split itself is in the search space via the
// λ=0 front point).
func TestPlanPowerZeroPenalty(t *testing.T) {
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanPower(context.Background(), m, frontF, 0.02, PlanOptions{MaxPenalty: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DelayPenalty > 1e-9+1e-12 {
		t.Errorf("delay penalty %.3g exceeds the zero budget", plan.DelayPenalty)
	}
	if plan.PowerSaved < -1e-9 {
		t.Errorf("plan lost power vs baseline: saved %.3g", plan.PowerSaved)
	}
}

func TestPlanPowerDomain(t *testing.T) {
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for _, L := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := PlanPower(context.Background(), m, frontF, L, PlanOptions{}); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("L=%g: want ErrDomain, got %v", L, err)
		}
	}
	if _, err := PlanPower(context.Background(), m, frontF, 0.02, PlanOptions{MaxPenalty: math.NaN()}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NaN MaxPenalty: want ErrDomain, got %v", err)
	}
	if _, err := PlanPower(context.Background(), m, frontF, 0.02, PlanOptions{MaxPenalty: -0.1}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("negative MaxPenalty: want ErrDomain, got %v", err)
	}
}
