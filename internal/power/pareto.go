package power

import (
	"context"
	"fmt"
	"math"

	"rlcint/internal/batch"
	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/num"
	"rlcint/internal/repeater"
	"rlcint/internal/runctl"
)

// FrontOptions configure the Pareto-front tracer. The zero value is the
// designed default: 17 points, weights up to 4, warm-start continuation
// along each tile, GOMAXPROCS workers.
type FrontOptions struct {
	// Points is the number of front points (≥ 2; default 17). Point i
	// carries weight λ_i = MaxWeight·(i/(Points−1))² — quadratic spacing
	// concentrates points near the delay-optimal end where the front bends.
	Points int
	// MaxWeight is the largest scalarization weight λ (default 4: the
	// power term weighs four times the delay term at the far end).
	MaxWeight float64
	// Workers bounds the worker pool (≤0 → GOMAXPROCS). Never affects
	// results — tile geometry is fixed by TileSize alone.
	Workers int
	// TileSize is the number of consecutive front points one worker owns
	// (≤0 → 8 warm, 1 cold). Part of the result contract in warm mode: it
	// decides which points are continuation-seeded.
	TileSize int
	// Cold disables warm-start continuation: every point solves
	// independently from the delay-optimal start. The cold front agrees
	// with the warm one to ≤1e-9 on the scalarized objective (which is
	// quadratically flat at each front point); the arguments h, k and the
	// individual delay/power coordinates agree to the polish tolerance
	// (~1e-7 relative) and are not bit-identical.
	Cold bool
	// Limits bound the whole trace; MaxIters counts inner optimizer
	// iterations and batch work items.
	Limits runctl.Limits
}

func (o FrontOptions) points() int {
	if o.Points >= 2 {
		return o.Points
	}
	return 17
}

func (o FrontOptions) maxWeight() float64 {
	if o.MaxWeight > 0 {
		return o.MaxWeight
	}
	return 4
}

func (o FrontOptions) tileSize() int {
	if o.TileSize > 0 {
		return o.TileSize
	}
	if o.Cold {
		return 1
	}
	return 8
}

func (o FrontOptions) validate() error {
	if o.Points != 0 && o.Points < 2 {
		return diag.Domainf("power.ParetoFront", "need at least 2 front points, got %d", o.Points)
	}
	if math.IsNaN(o.MaxWeight) || math.IsInf(o.MaxWeight, 0) || o.MaxWeight < 0 {
		return diag.Domainf("power.ParetoFront", "max weight %g must be finite and non-negative", o.MaxWeight)
	}
	return nil
}

// FrontPoint is one point of the delay/power Pareto front.
type FrontPoint struct {
	Weight float64 // scalarization weight λ (0 = delay-optimal end)
	H      float64 // segment length, m
	K      float64 // repeater size
	Tau    float64 // stage delay, s
	Delay  float64 // per-unit delay τ/h, s/m
	Power  float64 // per-unit total power, W/m
	Stage  Breakdown
	// Ratios against the pure delay optimum of the same problem.
	DelayRatio float64 // Delay / delay-optimal per-unit delay (≥ 1)
	PowerRatio float64 // Power / power at the delay optimum (≤ 1)
}

// frontRef holds the per-problem reference quantities every front point
// shares: the delay optimum (λ = 0 anchor and normalizer) and the RC
// optimum frame the solves run in.
type frontRef struct {
	m    Model
	prob core.Problem
	rc   repeater.RCOptimum
	opt  core.Optimum
	d0   float64    // per-unit delay at the delay optimum
	p0   float64    // per-unit power at the delay optimum
	x0   [2]float64 // delay optimum in (log h/h_RC, log k/k_RC)
}

func newFrontRef(ctx context.Context, m Model, f float64, lim runctl.Limits) (frontRef, error) {
	prob := core.Problem{Device: m.Device, Line: m.Line, F: f, Limits: lim}
	if err := prob.Validate(); err != nil {
		return frontRef{}, err
	}
	rc, err := core.OptimizeRC(prob)
	if err != nil {
		return frontRef{}, err
	}
	opt, err := core.OptimizeWS(ctx, prob, core.NewWorkspace())
	if err != nil {
		return frontRef{}, err
	}
	p0, err := m.PerLength(opt.H, opt.K)
	if err != nil {
		return frontRef{}, err
	}
	return frontRef{
		m: m, prob: prob, rc: rc, opt: opt,
		d0: opt.PerUnit, p0: p0,
		x0: [2]float64{math.Log(opt.H / rc.H), math.Log(opt.K / rc.K)},
	}, nil
}

// objective is the normalized scalarization D(h,k)/D0 + λ·P(h,k)/P0 over
// x = (log h/h_RC, log k/k_RC); +Inf outside the domain.
func (r *frontRef) objective(lam float64, x []float64) float64 {
	h, k := r.rc.Denormalize(math.Exp(x[0]), math.Exp(x[1]))
	pu := r.prob.PerUnitDelay(h, k)
	if math.IsInf(pu, 1) {
		return pu
	}
	pw, err := r.m.PerLength(h, k)
	if err != nil {
		return math.Inf(1)
	}
	return pu/r.d0 + lam*pw/r.p0
}

// frontWS is the per-worker scratch of the front trace: reusable optimizer
// workspaces plus the continuation seed chained from the previous point of
// the current tile.
type frontWS struct {
	nm     num.NelderMeadWS
	newton num.NewtonNDWS
	xs     [12]float64 // gradient probe scratch
	seed   [2]float64
	has    bool
}

// solveWeighted minimizes the λ-scalarized objective: a Nelder–Mead descent
// from the seed followed by a damped Newton polish on the central-difference
// gradient, which tightens the stationary point well past the simplex's
// ~√Tol parameter resolution. Deterministic for fixed (λ, seed, warm).
func (r *frontRef) solveWeighted(ctl *runctl.Controller, lam float64, seed [2]float64, warm bool, ws *frontWS) (FrontPoint, error) {
	obj := func(x []float64) float64 { return r.objective(lam, x) }
	initScale := 0.2
	if warm {
		initScale = 0.04
	}
	x0 := ws.xs[10:12]
	x0[0], x0[1] = seed[0], seed[1]
	xnm, fnm, err := num.NelderMead(obj, x0, num.NelderMeadOptions{
		Tol: 1e-13, MaxIter: 2500, InitScale: initScale, MaxRestart: 3,
		Ctl: ctl, WS: &ws.nm,
	})
	if err != nil {
		if runctl.IsStop(err) {
			return FrontPoint{}, err
		}
		return FrontPoint{}, fmt.Errorf("power: front point λ=%g: %w", lam, err)
	}
	best := [2]float64{xnm[0], xnm[1]}

	// Polish: Newton on the central-difference gradient of the scalarized
	// objective. The FD step 1e-4 (log coordinates) balances the delay
	// solver's evaluation noise against truncation; a line-search stall on
	// that noise floor still leaves the final iterate as a candidate — the
	// objective comparison decides.
	grad := func(x, out []float64) error {
		const d = 1e-4
		xp := ws.xs[0:2]
		for j := 0; j < 2; j++ {
			xp[0], xp[1] = x[0], x[1]
			xp[j] = x[j] + d
			fp := obj(xp)
			xp[j] = x[j] - d
			fm := obj(xp)
			if math.IsInf(fp, 1) || math.IsInf(fm, 1) {
				return diag.Domainf("power.front", "gradient probe left the feasible domain at x=(%g,%g)", x[0], x[1])
			}
			out[j] = (fp - fm) / (2 * d)
		}
		return nil
	}
	pres, perr := num.NewtonND(grad, best[:], num.NewtonNDOptions{
		Tol: 1e-8, MaxIter: 30, Damping: true, Ctl: ctl, WS: &ws.newton,
	})
	if runctl.IsStop(perr) {
		return FrontPoint{}, perr
	}
	if len(pres.X) == 2 {
		xp := ws.xs[2:4]
		xp[0], xp[1] = pres.X[0], pres.X[1]
		if fp := obj(xp); fp <= fnm+1e-11*(1+math.Abs(fnm)) {
			best = [2]float64{xp[0], xp[1]}
		}
	}

	h, k := r.rc.Denormalize(math.Exp(best[0]), math.Exp(best[1]))
	_, d, err := r.prob.Eval(h, k)
	if err != nil {
		return FrontPoint{}, fmt.Errorf("power: front point λ=%g: %w", lam, err)
	}
	stage, err := r.m.Stage(h, k)
	if err != nil {
		return FrontPoint{}, fmt.Errorf("power: front point λ=%g: %w", lam, err)
	}
	pw := stage.Total() / h
	return FrontPoint{
		Weight: lam, H: h, K: k, Tau: d.Tau,
		Delay: d.Tau / h, Power: pw, Stage: stage,
		DelayRatio: d.Tau / h / r.d0, PowerRatio: pw / r.p0,
	}, nil
}

// ParetoFront traces the delay/power Pareto front of the model's buffered
// line at threshold f: Points λ-scalarized solves from the delay-optimal
// end (λ = 0) toward the power-lean end (λ = MaxWeight), evaluated through
// the batched engine. In warm mode (default) each tile's first point seeds
// from the delay optimum and every later point from its neighbor's
// converged solution — the PR 4 continuation applied to the front.
//
// Results are deterministic for fixed FrontOptions: worker count changes
// wall-clock time only, never a bit of the result. On an error or a
// run-control stop the completed prefix of points is returned alongside
// the typed error.
func ParetoFront(ctx context.Context, m Model, f float64, opts FrontOptions) ([]FrontPoint, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ctl := runctl.New(ctx, opts.Limits)
	ref, err := newFrontRef(ctx, m, f, opts.Limits)
	if err != nil {
		return nil, err
	}
	n := opts.points()
	maxW := opts.maxWeight()
	weight := func(i int) float64 {
		t := float64(i) / float64(n-1)
		return maxW * t * t
	}
	return batch.Run(ctl, n,
		batch.Options{Workers: opts.Workers, TileSize: opts.tileSize()},
		func() *frontWS { return &frontWS{} },
		func(ws *frontWS, i int, warm bool) (FrontPoint, error) {
			seed := ref.x0
			warmed := false
			if !opts.Cold && warm && ws.has {
				seed, warmed = ws.seed, true
			}
			fp, err := ref.solveWeighted(ctl, weight(i), seed, warmed, ws)
			if err != nil {
				ws.has = false
				return FrontPoint{}, err
			}
			ws.seed = [2]float64{math.Log(fp.H / ref.rc.H), math.Log(fp.K / ref.rc.K)}
			ws.has = true
			return fp, nil
		})
}

// OptimizePowerBudget minimizes the per-unit delay subject to a per-unit
// power ceiling (W/m): the direct constrained counterpart of a ParetoFront
// point. It bisects the scalarization weight λ — per-unit power is
// monotone non-increasing in λ — until the solve's power meets the budget,
// warm-seeding every solve from the previous one. A budget at or above the
// delay optimum's power returns the delay-optimal end of the front; a
// budget below the wire's intrinsic floor is a domain error.
func OptimizePowerBudget(ctx context.Context, m Model, f, budget float64, lim runctl.Limits) (FrontPoint, error) {
	if err := diag.CheckFinite("power.OptimizePowerBudget", []string{"budget"}, []float64{budget}); err != nil {
		return FrontPoint{}, err
	}
	if budget <= 0 {
		return FrontPoint{}, diag.Domainf("power.OptimizePowerBudget", "budget %g W/m must be positive", budget)
	}
	ctl := runctl.New(ctx, lim)
	ref, err := newFrontRef(ctx, m, f, lim)
	if err != nil {
		return FrontPoint{}, err
	}
	ws := &frontWS{}
	solve := func(lam float64, seed [2]float64, warm bool) (FrontPoint, error) {
		fp, err := ref.solveWeighted(ctl, lam, seed, warm, ws)
		if err != nil {
			return FrontPoint{}, err
		}
		return fp, nil
	}
	seedOf := func(fp FrontPoint) [2]float64 {
		return [2]float64{math.Log(fp.H / ref.rc.H), math.Log(fp.K / ref.rc.K)}
	}
	at0, err := solve(0, ref.x0, false)
	if err != nil {
		return FrontPoint{}, err
	}
	if at0.Power <= budget {
		return at0, nil
	}
	// Expand the bracket: find a λ whose power meets the budget.
	lo, hi := 0.0, 1.0
	seed, warm := seedOf(at0), true
	var atHi FrontPoint
	for {
		atHi, err = solve(hi, seed, warm)
		if err != nil {
			return FrontPoint{}, err
		}
		seed, warm = seedOf(atHi), true
		if atHi.Power <= budget {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e9 {
			return FrontPoint{}, diag.Domainf("power.OptimizePowerBudget",
				"budget %g W/m unreachable (floor ≈ %g W/m)", budget, atHi.Power)
		}
	}
	// Bisect λ until the achieved power matches the budget.
	best := atHi
	for iter := 0; iter < 200 && hi-lo > 1e-12*hi; iter++ {
		if err := ctl.Tick("power.OptimizePowerBudget"); err != nil {
			return best, err
		}
		mid := 0.5 * (lo + hi)
		atMid, err := solve(mid, seed, warm)
		if err != nil {
			return best, err
		}
		seed, warm = seedOf(atMid), true
		if atMid.Power <= budget {
			hi, best = mid, atMid
			if budget-atMid.Power <= 1e-9*budget {
				break
			}
		} else {
			lo = mid
		}
	}
	return best, nil
}
