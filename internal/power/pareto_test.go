package power

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
)

const frontF = 0.9

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestParetoFrontDeterministicAcrossWorkers is the determinism contract:
// worker count changes wall-clock time only, never a bit of the result.
func TestParetoFrontDeterministicAcrossWorkers(t *testing.T) {
	m := testModel(t)
	serial, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("front differs between 1 and %d workers", workers)
		}
	}
	// Cold mode must be deterministic too.
	cs, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Workers: 1, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Workers: 8, Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cs, cp) {
		t.Errorf("cold front differs between 1 and 8 workers")
	}
}

// TestParetoFrontWarmVsCold: continuation seeding is a speed/robustness
// device, not a result change — warm and cold traces must land on the same
// front points. The polish leaves ~1e-11 relative play; the contract is 1e-9.
func TestParetoFrontWarmVsCold(t *testing.T) {
	m := testModel(t)
	warm, err := ParetoFront(context.Background(), m, frontF, FrontOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Cold: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("length mismatch: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if d := relDiff(warm[i].Delay, cold[i].Delay); d > 1e-9 {
			t.Errorf("point %d (λ=%g): warm/cold delay differ by %.3g", i, warm[i].Weight, d)
		}
		if d := relDiff(warm[i].Power, cold[i].Power); d > 1e-9 {
			t.Errorf("point %d (λ=%g): warm/cold power differ by %.3g", i, warm[i].Weight, d)
		}
	}
}

// TestParetoFrontShape: along increasing λ the trace must trade delay for
// power monotonically, anchored at the delay optimum.
func TestParetoFrontShape(t *testing.T) {
	m := testModel(t)
	front, err := ParetoFront(context.Background(), m, frontF, FrontOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != 17 {
		t.Fatalf("default front has %d points, want 17", len(front))
	}
	if front[0].Weight != 0 || relDiff(front[0].DelayRatio, 1) > 1e-9 || relDiff(front[0].PowerRatio, 1) > 1e-9 {
		t.Errorf("λ=0 anchor is not the delay optimum: %+v", front[0])
	}
	const slack = 1e-9
	for i := 1; i < len(front); i++ {
		if front[i].Weight <= front[i-1].Weight {
			t.Errorf("weights not increasing at %d", i)
		}
		if front[i].Delay < front[i-1].Delay*(1-slack) {
			t.Errorf("delay decreased along the front at %d: %g → %g", i, front[i-1].Delay, front[i].Delay)
		}
		if front[i].Power > front[i-1].Power*(1+slack) {
			t.Errorf("power increased along the front at %d: %g → %g", i, front[i-1].Power, front[i].Power)
		}
	}
	// The far end must buy a real power saving for a bounded delay penalty.
	last := front[len(front)-1]
	if last.PowerRatio > 0.85 || last.DelayRatio > 1.5 {
		t.Errorf("λ=%g end of front looks degenerate: delay ×%.3f, power ×%.3f",
			last.Weight, last.DelayRatio, last.PowerRatio)
	}
}

// TestOptimizePowerBudgetMatchesFront: each front point's delay must match a
// direct constrained Optimize at its power value within 1e-6 — the
// scalarized trace and the budgeted solver are two views of one front.
func TestOptimizePowerBudgetMatchesFront(t *testing.T) {
	m := testModel(t)
	front, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Points: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range front[1:] { // λ=0 is the unconstrained trivial case
		got, err := OptimizePowerBudget(context.Background(), m, frontF, fp.Power, runctl.Limits{})
		if err != nil {
			t.Fatalf("budget %g: %v", fp.Power, err)
		}
		if d := relDiff(got.Delay, fp.Delay); d > 1e-6 {
			t.Errorf("budget %g: delay %.6e vs front %.6e (rel %.3g > 1e-6)", fp.Power, got.Delay, fp.Delay, d)
		}
		if got.Power > fp.Power*(1+1e-9) {
			t.Errorf("budget %g violated: got %g", fp.Power, got.Power)
		}
	}
	// A generous budget returns the delay optimum.
	easy, err := OptimizePowerBudget(context.Background(), m, frontF, 2*front[0].Power, runctl.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(easy.Delay, front[0].Delay) > 1e-9 {
		t.Errorf("slack budget should return the delay optimum")
	}
}

func TestOptimizePowerBudgetDomain(t *testing.T) {
	m := testModel(t)
	for _, budget := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := OptimizePowerBudget(context.Background(), m, frontF, budget, runctl.Limits{}); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("budget %g: want ErrDomain, got %v", budget, err)
		}
	}
	// Unreachably small budget: the wire's intrinsic power floor.
	if _, err := OptimizePowerBudget(context.Background(), m, frontF, 1e-12, runctl.Limits{}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("unreachable budget: want ErrDomain, got %v", err)
	}
}

func TestParetoFrontOptionsDomain(t *testing.T) {
	m := testModel(t)
	if _, err := ParetoFront(context.Background(), m, frontF, FrontOptions{Points: 1}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("Points=1: want ErrDomain, got %v", err)
	}
	if _, err := ParetoFront(context.Background(), m, frontF, FrontOptions{MaxWeight: math.NaN()}); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("NaN MaxWeight: want ErrDomain, got %v", err)
	}
}

func TestParetoFrontCancel(t *testing.T) {
	m := testModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParetoFront(ctx, m, frontF, FrontOptions{}); err == nil {
		t.Errorf("cancelled context: want error, got nil")
	}
}

func BenchmarkParetoFront(b *testing.B) {
	m, err := New(tech.Node100(), 2e-6, Params{Alpha: 0.15, Freq: 1e9})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParetoFront(context.Background(), m, frontF, FrontOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
