package laplace

import (
	"math"
	"testing"

	"rlcint/internal/pade"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func TestGaverStehfestExponential(t *testing.T) {
	// L⁻¹{1/(s+a)} = e^{-at}
	a := 3.0
	f := func(s complex128) complex128 { return 1 / (s + complex(a, 0)) }
	for _, tt := range []float64{0.1, 0.5, 1, 2} {
		got, err := GaverStehfest(f, tt, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-a * tt)
		// Gaver–Stehfest at n=7 reaches ~1e-5 absolute accuracy in float64.
		if math.Abs(got-want) > 1e-4+1e-3*want {
			t.Errorf("t=%v: %v, want %v", tt, got, want)
		}
	}
}

func TestGaverStehfestStep(t *testing.T) {
	// L⁻¹{1/s} = 1
	f := func(s complex128) complex128 { return 1 / s }
	got, err := GaverStehfest(f, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-8 {
		t.Errorf("step = %v", got)
	}
}

func TestTalbotExponentialAndRamp(t *testing.T) {
	a := 2.0
	exp := func(s complex128) complex128 { return 1 / (s + complex(a, 0)) }
	ramp := func(s complex128) complex128 { return 1 / (s * s) }
	for _, tt := range []float64{0.2, 1, 3} {
		got, err := Talbot(exp, tt, 32)
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Exp(-a * tt); math.Abs(got-want) > 1e-8 {
			t.Errorf("exp t=%v: %v, want %v", tt, got, want)
		}
		got, err = Talbot(ramp, tt, 32)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt) > 1e-8*tt {
			t.Errorf("ramp t=%v: %v", tt, got)
		}
	}
}

func TestTalbotOscillatory(t *testing.T) {
	// L⁻¹{ω/((s+a)²+ω²)} = e^{-at} sin(ωt): a damped oscillation, the case
	// Gaver–Stehfest cannot see.
	a, w := 1.0, 6.0
	f := func(s complex128) complex128 {
		d := (s + complex(a, 0))
		return complex(w, 0) / (d*d + complex(w*w, 0))
	}
	for _, tt := range []float64{0.3, 1, 2} {
		got, err := Talbot(f, tt, 48)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-a*tt) * math.Sin(w*tt)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("t=%v: %v, want %v", tt, got, want)
		}
	}
}

func TestTalbotMatchesPadeStepResponse(t *testing.T) {
	// Invert the two-pole transfer function numerically and compare to the
	// closed-form step response.
	m, err := pade.New(2.1e-10, 2.3e-20) // slightly overdamped paper-scale model
	if err != nil {
		t.Fatal(err)
	}
	h := func(s complex128) complex128 {
		return 1 / (1 + complex(m.B1, 0)*s + complex(m.B2, 0)*s*s)
	}
	step := StepOf(h)
	for _, frac := range []float64{0.3, 1, 3} {
		tt := frac * math.Sqrt(m.B2)
		got, err := Talbot(step, tt, 48)
		if err != nil {
			t.Fatal(err)
		}
		want := m.Step(tt)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("t=%v: Talbot %v, closed form %v", tt, got, want)
		}
	}
}

func TestTalbotExactDistributedLineStep(t *testing.T) {
	// Invert the exact Eq. (1) response of an overdamped stage and check it
	// against the two-pole model within a few percent (the paper's central
	// approximation) at mid-rise.
	n := tech.Node250()
	k := 578.0
	st := tline.Stage{
		Line: tline.Line{R: n.R, L: 0.1 * tech.NHPerMM, C: n.C},
		H:    14.4 * tech.MM,
		RS:   n.Rs / k,
		CP:   n.Cp * k,
		CL:   n.C0 * k,
	}
	m, err := pade.FromStage(st)
	if err != nil {
		t.Fatal(err)
	}
	step := StepOf(st.TransferExact)
	d, err := m.Delay(0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Talbot(step, d.Tau, 64)
	if err != nil {
		t.Fatal(err)
	}
	// At the two-pole model's 50% point the exact response should be near
	// 0.5 — the model is accurate near critical damping.
	if math.Abs(got-0.5) > 0.06 {
		t.Errorf("exact response at two-pole 50%% delay = %v, want ≈0.5", got)
	}
}

func TestValidation(t *testing.T) {
	f := func(s complex128) complex128 { return 1 / s }
	if _, err := GaverStehfest(f, 0, 7); err == nil {
		t.Error("t=0 must fail")
	}
	if _, err := GaverStehfest(f, 1, 12); err == nil {
		t.Error("n too large must fail")
	}
	if _, err := Talbot(f, -1, 32); err == nil {
		t.Error("negative t must fail")
	}
}

func TestStehfestCoefficientsSumToZero(t *testing.T) {
	// Σ V_k = 0 is a known identity (inverting F≡constant gives 0 for t>0
	// apart from the 1/t factor... precisely: Σ V_k = 0).
	for n := 3; n <= 8; n++ {
		sum := 0.0
		for k := 1; k <= 2*n; k++ {
			sum += stehfestCoeff(k, n)
		}
		if math.Abs(sum) > 1e-4*math.Abs(stehfestCoeff(n, n)) {
			t.Errorf("n=%d: ΣV = %v, want 0", n, sum)
		}
	}
}
