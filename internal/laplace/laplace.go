// Package laplace provides numerical inverse Laplace transforms used to
// validate the reduced-order delay models against the exact distributed-line
// transfer function of Eq. (1): the Gaver–Stehfest method (real samples,
// excellent for smooth overdamped responses) and the fixed-Talbot method
// (complex contour, handles moderately oscillatory responses).
package laplace

import (
	"fmt"
	"math"
	"math/cmplx"
)

// F is a Laplace-domain function evaluated at complex frequency s.
type F func(s complex128) complex128

// GaverStehfest inverts F at time t > 0 using 2n terms (n ≤ 9 in float64;
// larger n loses to catastrophic cancellation). F is sampled on the positive
// real axis only, so the method is blind to oscillation: use it for
// overdamped/smooth responses.
func GaverStehfest(f F, t float64, n int) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("laplace: GaverStehfest requires t > 0, got %g", t)
	}
	if n < 1 || n > 9 {
		return 0, fmt.Errorf("laplace: GaverStehfest n=%d outside [1,9]", n)
	}
	N := 2 * n
	ln2t := math.Ln2 / t
	sum := 0.0
	for k := 1; k <= N; k++ {
		vk := stehfestCoeff(k, n)
		fv := f(complex(float64(k)*ln2t, 0))
		sum += vk * real(fv)
	}
	return ln2t * sum, nil
}

// stehfestCoeff computes the Stehfest weight V_k for N = 2n terms.
func stehfestCoeff(k, n int) float64 {
	sum := 0.0
	lo := (k + 1) / 2
	hi := k
	if hi > n {
		hi = n
	}
	for j := lo; j <= hi; j++ {
		num := math.Pow(float64(j), float64(n)) * fact(2*j)
		den := fact(n-j) * fact(j) * fact(j-1) * fact(k-j) * fact(2*j-k)
		sum += num / den
	}
	sign := 1.0
	if (n+k)%2 != 0 {
		sign = -1
	}
	return sign * sum
}

func fact(n int) float64 {
	out := 1.0
	for i := 2; i <= n; i++ {
		out *= float64(i)
	}
	return out
}

// Talbot inverts F at time t > 0 with the fixed-Talbot contour of Abate and
// Valkó using m nodes. All singularities of F must lie in the open left half
// plane; oscillatory responses need m of roughly twice the number of
// significant ringing cycles.
func Talbot(f F, t float64, m int) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("laplace: Talbot requires t > 0, got %g", t)
	}
	if m < 4 {
		m = 4
	}
	r := 2 * float64(m) / (5 * t)
	// θ = 0 term.
	sum := 0.5 * real(f(complex(r, 0))*cmplx.Exp(complex(r*t, 0)))
	for k := 1; k < m; k++ {
		theta := float64(k) * math.Pi / float64(m)
		cot := math.Cos(theta) / math.Sin(theta)
		s := complex(r*theta*cot, r*theta)
		sigma := theta + (theta*cot-1)*cot
		term := cmplx.Exp(s*complex(t, 0)) * f(s) * complex(1, sigma)
		sum += real(term)
	}
	return r / float64(m) * sum, nil
}

// StepOf converts a transfer function H into the Laplace transform of its
// unit-step response, H(s)/s.
func StepOf(h F) F {
	return func(s complex128) complex128 { return h(s) / s }
}
