package mc

import (
	"context"
	"errors"
	"testing"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/testutil"
)

// TestSerialParallelBitIdentical is the determinism contract of the pooled
// Monte-Carlo: because each trial draws from an RNG stream derived from
// (seed, trial index), the Stats must be bit-identical for every worker
// count.
func TestSerialParallelBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := problem100()
	d := Uniform{Lo: 0, Hi: 8e-7}
	const n, seed = 64, 42

	serial, err := DelayUnderUncertaintyCtx(context.Background(), p, 1e-3, 150, d, n, seed, Opts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := DelayUnderUncertaintyCtx(context.Background(), p, 1e-3, 150, d, n, seed, Opts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par != serial {
			t.Fatalf("workers=%d stats differ from serial:\n  serial   %+v\n  parallel %+v", workers, serial, par)
		}
	}
	// And the legacy entry point is the Workers=1 run.
	legacy, err := DelayUnderUncertainty(p, 1e-3, 150, d, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != serial {
		t.Fatalf("legacy API diverged from Ctx serial run: %+v vs %+v", legacy, serial)
	}
}

// TestTrialOrderStreaming verifies OnTrial sees every trial exactly once, in
// order, with the same value at the same index regardless of worker count.
func TestTrialOrderStreaming(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := problem100()
	d := Uniform{Lo: 0, Hi: 8e-7}
	const n, seed = 32, 7

	collect := func(workers int) []float64 {
		var vals []float64
		_, err := DelayUnderUncertaintyCtx(context.Background(), p, 1e-3, 150, d, n, seed, Opts{
			Workers: workers,
			OnTrial: func(i int, v float64) error {
				if i != len(vals) {
					t.Fatalf("workers=%d: trial %d delivered at position %d", workers, i, len(vals))
				}
				vals = append(vals, v)
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	serial := collect(1)
	parallel := collect(5)
	if len(serial) != n || len(parallel) != n {
		t.Fatalf("trial counts: serial %d, parallel %d, want %d", len(serial), len(parallel), n)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("trial %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestMCCancellationKeepsPrefix(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := problem100()
	d := Uniform{Lo: 0, Hi: 8e-7}
	ctx, cancel := context.WithCancel(context.Background())

	seen := 0
	_, err := DelayUnderUncertaintyCtx(ctx, p, 1e-3, 150, d, 10000, 1, Opts{
		Workers: 4,
		OnTrial: func(i int, v float64) error {
			seen++
			if seen == 10 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, diag.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if seen < 10 || seen >= 10000 {
		t.Fatalf("cancellation delivered %d trials", seen)
	}
}

func TestMCWallClockBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := problem100()
	d := Uniform{Lo: 0, Hi: 8e-7}
	_, err := PenaltyUnderUncertaintyCtx(context.Background(), p, 1e-3, 150, d, 100000, 3, Opts{
		Workers: 2,
		Limits:  runctl.Limits{Timeout: 50 * time.Millisecond},
	})
	if !runctl.IsStop(err) {
		t.Fatalf("want a run-control stop, got %v", err)
	}
}

func TestMCIterationBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := problem100()
	d := Uniform{Lo: 0, Hi: 8e-7}
	st, err := DelayUnderUncertaintyCtx(context.Background(), p, 1e-3, 150, d, 1000, 5, Opts{
		Workers: 3,
		Limits:  runctl.Limits{MaxIters: 25},
	})
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if st.N == 0 || st.N > 25 {
		t.Fatalf("budgeted run summarized %d trials, want 1..25", st.N)
	}
}
