// Package mc quantifies delay uncertainty under unknown line inductance by
// Monte-Carlo sampling — the statistical formulation of the paper's
// Section 3.2 problem: the effective l of a fabricated line depends on the
// switching-dependent current return path, so a fixed repeater design sees a
// *distribution* of delays. Sampling l (directly, or through the
// return-distance model of internal/extract) and pushing each sample through
// the two-pole delay gives the spread a designer must budget.
package mc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// Dist is a one-dimensional sampling distribution.
type Dist interface {
	Sample(rng *rand.Rand) float64
}

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// Triangular samples a triangular distribution on [Lo, Hi] with the given
// Mode — a common shape for "nominal with bounded excursions" parameters.
type Triangular struct{ Lo, Mode, Hi float64 }

// Sample implements Dist.
func (t Triangular) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if u < fc {
		return t.Lo + math.Sqrt(u*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// Stats summarizes a sampled quantity.
type Stats struct {
	N                  int
	Mean, Std          float64
	Min, Max, P50, P95 float64
}

func summarize(samples []float64) Stats {
	n := len(samples)
	s := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum, sum2 := 0.0, 0.0
	for _, x := range samples {
		sum += x
		sum2 += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	v := sum2/float64(n) - s.Mean*s.Mean
	if v < 0 {
		v = 0
	}
	s.Std = math.Sqrt(v)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.P50 = sorted[n/2]
	s.P95 = sorted[min(n-1, n*95/100)]
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Opts configures a Monte-Carlo run's execution — not its statistics, which
// are fixed by (distribution, n, seed).
type Opts struct {
	// Workers is the trial-evaluation parallelism (default 1, i.e. serial).
	// The sampled values — and therefore the Stats — are bit-identical for
	// every worker count: each trial draws from its own RNG stream derived
	// from (seed, trial index), never from a shared sequential stream.
	Workers int
	// Limits bound the run; MaxIters counts trials.
	Limits runctl.Limits
	// OnTrial, when non-nil, receives each trial's value in trial order as
	// soon as all earlier trials have been delivered — the streaming hook
	// CLIs use to persist completed rows before a cancellation. Returning an
	// error stops the run.
	OnTrial func(i int, v float64) error
}

func (o Opts) workers() int {
	if o.Workers <= 0 {
		return 1
	}
	return o.Workers
}

// trialSeed derives a decorrelated per-trial RNG seed from the run seed and
// the trial index with a splitmix64-style mix, so trial i's draw is a pure
// function of (seed, i) — the property that makes parallel execution
// bit-identical to serial.
func trialSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// DelayUnderUncertainty samples the line inductance from lDist (H/m) and
// evaluates the 50%-threshold stage delay of a FIXED design (h, k) for the
// given technology problem at each sample. Deterministic for a given seed.
func DelayUnderUncertainty(p core.Problem, h, k float64, lDist Dist, n int, seed int64) (Stats, error) {
	return DelayUnderUncertaintyCtx(context.Background(), p, h, k, lDist, n, seed, Opts{})
}

// DelayUnderUncertaintyCtx is DelayUnderUncertainty under run control with
// optional parallel trial evaluation (see Opts). A stopped run returns the
// statistics of the completed trial prefix (zero Stats when fewer than two
// trials finished) alongside the typed stop error.
func DelayUnderUncertaintyCtx(ctx context.Context, p core.Problem, h, k float64, lDist Dist, n int, seed int64, o Opts) (st Stats, err error) {
	defer diag.RecoverTo(&err, "mc.DelayUnderUncertainty")
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("mc: need at least 2 samples, got %d", n)
	}
	if lDist == nil {
		return Stats{}, fmt.Errorf("mc: nil distribution")
	}
	samples, err := runTrials(ctx, o, n, seed, func(i int, rng *rand.Rand) (float64, error) {
		l := lDist.Sample(rng)
		if l < 0 {
			return 0, fmt.Errorf("mc: sampled negative inductance %g", l)
		}
		q := p
		q.Line.L = l
		_, d, err := q.Eval(h, k)
		if err != nil {
			return 0, fmt.Errorf("mc: sample %d (l=%g): %w", i, l, err)
		}
		return d.Tau, nil
	})
	if len(samples) >= 2 {
		st = summarize(samples)
	}
	return st, err
}

// PenaltyUnderUncertainty samples l and evaluates the ratio of the fixed
// design's delay-per-length to the per-sample RLC optimum — the Monte-Carlo
// generalization of the paper's Figure 8. It is considerably more expensive
// than DelayUnderUncertainty (one optimization per sample).
func PenaltyUnderUncertainty(p core.Problem, h, k float64, lDist Dist, n int, seed int64) (Stats, error) {
	return PenaltyUnderUncertaintyCtx(context.Background(), p, h, k, lDist, n, seed, Opts{})
}

// PenaltyUnderUncertaintyCtx is PenaltyUnderUncertainty under run control
// with optional parallel trial evaluation; semantics match
// DelayUnderUncertaintyCtx.
func PenaltyUnderUncertaintyCtx(ctx context.Context, p core.Problem, h, k float64, lDist Dist, n int, seed int64, o Opts) (st Stats, err error) {
	defer diag.RecoverTo(&err, "mc.PenaltyUnderUncertainty")
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("mc: need at least 2 samples, got %d", n)
	}
	if lDist == nil {
		return Stats{}, fmt.Errorf("mc: nil distribution")
	}
	// Trials borrow optimizer workspaces from a pool sized by the worker
	// count, so an n-trial run allocates a handful of scratch buffers
	// instead of n of them. Workspaces never change results (samples stay
	// bit-identical to the unpooled path); trials are cold solves — l is
	// drawn at random, so there is no neighboring solution to continue from.
	wsPool := sync.Pool{New: func() any { return core.NewWorkspace() }}
	samples, err := runTrials(ctx, o, n, seed, func(i int, rng *rand.Rand) (float64, error) {
		q := p
		q.Line.L = lDist.Sample(rng)
		ws := wsPool.Get().(*core.Workspace)
		opt, err := core.OptimizeWS(ctx, q, ws)
		wsPool.Put(ws)
		if err != nil {
			if runctl.IsStop(err) {
				return 0, err
			}
			return 0, fmt.Errorf("mc: sample %d: %w", i, err)
		}
		fixed := q.PerUnitDelay(h, k)
		if math.IsInf(fixed, 1) {
			return 0, fmt.Errorf("mc: sample %d: fixed design infeasible", i)
		}
		return fixed / opt.PerUnit, nil
	})
	if len(samples) >= 2 {
		st = summarize(samples)
	}
	return st, err
}

// runTrials executes n trials over a bounded worker pool, giving trial i an
// RNG stream derived from (seed, i) and streaming values back in trial
// order. On a stop or a trial error it returns the contiguous prefix of
// completed samples alongside the error.
func runTrials(ctx context.Context, o Opts, n int, seed int64, eval func(i int, rng *rand.Rand) (float64, error)) ([]float64, error) {
	ctl := runctl.New(ctx, o.Limits)
	samples := make([]float64, 0, n)
	err := runctl.Stream(ctl, o.workers(), n,
		func(i int) (float64, error) {
			return eval(i, rand.New(rand.NewSource(trialSeed(seed, i))))
		},
		func(i int, v float64) error {
			samples = append(samples, v)
			if o.OnTrial != nil {
				return o.OnTrial(i, v)
			}
			return nil
		})
	return samples, err
}
