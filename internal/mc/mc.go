// Package mc quantifies delay uncertainty under unknown line inductance by
// Monte-Carlo sampling — the statistical formulation of the paper's
// Section 3.2 problem: the effective l of a fabricated line depends on the
// switching-dependent current return path, so a fixed repeater design sees a
// *distribution* of delays. Sampling l (directly, or through the
// return-distance model of internal/extract) and pushing each sample through
// the two-pole delay gives the spread a designer must budget.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rlcint/internal/core"
)

// Dist is a one-dimensional sampling distribution.
type Dist interface {
	Sample(rng *rand.Rand) float64
}

// Uniform samples uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*rng.Float64()
}

// Triangular samples a triangular distribution on [Lo, Hi] with the given
// Mode — a common shape for "nominal with bounded excursions" parameters.
type Triangular struct{ Lo, Mode, Hi float64 }

// Sample implements Dist.
func (t Triangular) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	fc := (t.Mode - t.Lo) / (t.Hi - t.Lo)
	if u < fc {
		return t.Lo + math.Sqrt(u*(t.Hi-t.Lo)*(t.Mode-t.Lo))
	}
	return t.Hi - math.Sqrt((1-u)*(t.Hi-t.Lo)*(t.Hi-t.Mode))
}

// Stats summarizes a sampled quantity.
type Stats struct {
	N                  int
	Mean, Std          float64
	Min, Max, P50, P95 float64
}

func summarize(samples []float64) Stats {
	n := len(samples)
	s := Stats{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	sum, sum2 := 0.0, 0.0
	for _, x := range samples {
		sum += x
		sum2 += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	v := sum2/float64(n) - s.Mean*s.Mean
	if v < 0 {
		v = 0
	}
	s.Std = math.Sqrt(v)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.P50 = sorted[n/2]
	s.P95 = sorted[min(n-1, n*95/100)]
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DelayUnderUncertainty samples the line inductance from lDist (H/m) and
// evaluates the 50%-threshold stage delay of a FIXED design (h, k) for the
// given technology problem at each sample. Deterministic for a given seed.
func DelayUnderUncertainty(p core.Problem, h, k float64, lDist Dist, n int, seed int64) (Stats, error) {
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("mc: need at least 2 samples, got %d", n)
	}
	if lDist == nil {
		return Stats{}, fmt.Errorf("mc: nil distribution")
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		l := lDist.Sample(rng)
		if l < 0 {
			return Stats{}, fmt.Errorf("mc: sampled negative inductance %g", l)
		}
		q := p
		q.Line.L = l
		_, d, err := q.Eval(h, k)
		if err != nil {
			return Stats{}, fmt.Errorf("mc: sample %d (l=%g): %w", i, l, err)
		}
		samples = append(samples, d.Tau)
	}
	return summarize(samples), nil
}

// PenaltyUnderUncertainty samples l and evaluates the ratio of the fixed
// design's delay-per-length to the per-sample RLC optimum — the Monte-Carlo
// generalization of the paper's Figure 8. It is considerably more expensive
// than DelayUnderUncertainty (one optimization per sample).
func PenaltyUnderUncertainty(p core.Problem, h, k float64, lDist Dist, n int, seed int64) (Stats, error) {
	if err := p.Validate(); err != nil {
		return Stats{}, err
	}
	if n < 2 {
		return Stats{}, fmt.Errorf("mc: need at least 2 samples, got %d", n)
	}
	if lDist == nil {
		return Stats{}, fmt.Errorf("mc: nil distribution")
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		q := p
		q.Line.L = lDist.Sample(rng)
		opt, err := core.Optimize(q)
		if err != nil {
			return Stats{}, fmt.Errorf("mc: sample %d: %w", i, err)
		}
		fixed := q.PerUnitDelay(h, k)
		if math.IsInf(fixed, 1) {
			return Stats{}, fmt.Errorf("mc: sample %d: fixed design infeasible", i)
		}
		samples = append(samples, fixed/opt.PerUnit)
	}
	return summarize(samples), nil
}
