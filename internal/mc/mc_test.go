package mc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rlcint/internal/core"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func problem100() core.Problem {
	n := tech.Node100()
	return core.Problem{Device: repeater.FromTech(n), Line: tline.Line{R: n.R, C: n.C}}
}

func TestUniformSamplesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Uniform{Lo: 2, Hi: 5}
	for i := 0; i < 1000; i++ {
		x := d.Sample(rng)
		if x < 2 || x > 5 {
			t.Fatalf("sample %v outside [2,5]", x)
		}
	}
}

func TestTriangularSamplesInRangeAndPeaked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Triangular{Lo: 0, Mode: 1, Hi: 4}
	nearMode, farMode := 0, 0
	for i := 0; i < 4000; i++ {
		x := d.Sample(rng)
		if x < 0 || x > 4 {
			t.Fatalf("sample %v outside [0,4]", x)
		}
		if math.Abs(x-1) < 0.5 {
			nearMode++
		}
		if math.Abs(x-3.5) < 0.5 {
			farMode++
		}
	}
	if nearMode <= farMode {
		t.Errorf("triangular not peaked at mode: %d near vs %d far", nearMode, farMode)
	}
}

func TestTriangularMeanProperty(t *testing.T) {
	// Property: the sample mean approaches (Lo+Mode+Hi)/3.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Triangular{Lo: 1, Mode: 2, Hi: 6}
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += d.Sample(rng)
		}
		return math.Abs(sum/n-3) < 0.05
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDelayUnderUncertaintyBasic(t *testing.T) {
	p := problem100()
	st, err := DelayUnderUncertainty(p, 11.1e-3, 528,
		Uniform{Lo: 0.5e-6, Hi: 4.9e-6}, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(st.Min <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.Max) {
		t.Errorf("quantile ordering broken: %+v", st)
	}
	if st.Mean < st.Min || st.Mean > st.Max {
		t.Errorf("mean outside range: %+v", st)
	}
	if st.Std <= 0 {
		t.Errorf("spread expected for a wide l range: %+v", st)
	}
	// Delays are physically plausible (50-500 ps).
	if st.Min < 50e-12 || st.Max > 500e-12 {
		t.Errorf("implausible delays: %+v", st)
	}
}

func TestDelayUncertaintyDeterministicAndWidens(t *testing.T) {
	p := problem100()
	a, err := DelayUnderUncertainty(p, 11.1e-3, 528, Uniform{Lo: 1e-6, Hi: 2e-6}, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DelayUnderUncertainty(p, 11.1e-3, 528, Uniform{Lo: 1e-6, Hi: 2e-6}, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed must reproduce identical stats")
	}
	wide, err := DelayUnderUncertainty(p, 11.1e-3, 528, Uniform{Lo: 0.2e-6, Hi: 4.8e-6}, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Std <= a.Std {
		t.Errorf("wider l distribution must widen the delay spread: %v vs %v", wide.Std, a.Std)
	}
}

func TestDegenerateDistributionZeroSpread(t *testing.T) {
	p := problem100()
	st, err := DelayUnderUncertainty(p, 11.1e-3, 528, Uniform{Lo: 2e-6, Hi: 2e-6}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Std > 1e-18 || st.Min != st.Max {
		t.Errorf("point distribution must have zero spread: %+v", st)
	}
}

func TestPenaltyUnderUncertaintyMatchesFig8Scale(t *testing.T) {
	// The MC penalty of the RC design over 0.1-4.9 nH/mm must sit in the
	// Figure 8 band: worst ≈12%, never below 1.
	p := problem100()
	st, err := PenaltyUnderUncertainty(p, 11.1e-3, 528,
		Uniform{Lo: 0.1e-6, Hi: 4.9e-6}, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Min < 1-1e-9 {
		t.Errorf("penalty below 1: %+v", st)
	}
	if st.Max > 1.15 || st.Max < 1.03 {
		t.Errorf("worst-case penalty %v outside the Figure 8 band", st.Max)
	}
}

func TestValidation(t *testing.T) {
	p := problem100()
	if _, err := DelayUnderUncertainty(p, 0.01, 500, nil, 10, 1); err == nil {
		t.Error("nil dist must fail")
	}
	if _, err := DelayUnderUncertainty(p, 0.01, 500, Uniform{Lo: 1e-6, Hi: 2e-6}, 1, 1); err == nil {
		t.Error("n=1 must fail")
	}
	if _, err := DelayUnderUncertainty(p, 0.01, 500, Uniform{Lo: -1e-6, Hi: -1e-7}, 10, 1); err == nil {
		t.Error("negative l must fail")
	}
	bad := p
	bad.F = 3
	if _, err := DelayUnderUncertainty(bad, 0.01, 500, Uniform{Lo: 1e-6, Hi: 2e-6}, 10, 1); err == nil {
		t.Error("invalid problem must fail")
	}
	if _, err := PenaltyUnderUncertainty(bad, 0.01, 500, Uniform{Lo: 1e-6, Hi: 2e-6}, 10, 1); err == nil {
		t.Error("invalid problem must fail")
	}
}
