package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
)

// Every sweep entry point must reject empty and non-finite inductance grids
// with a typed ErrDomain instead of silently returning zero points — the
// serving layer feeds these grids from untrusted JSON.
func TestSweepGridValidation(t *testing.T) {
	node := tech.Node100()
	bad := [][]float64{
		{},
		nil,
		{1e-6, math.NaN()},
		{math.Inf(1)},
		{1e-6, math.Inf(-1), 2e-6},
	}
	for _, ls := range bad {
		if _, err := Sweep(node, ls, 0.5); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("Sweep(ls=%v) = %v, want ErrDomain", ls, err)
		}
		if _, err := SweepCtx(context.Background(), runctl.Limits{}, node, ls, 0.5); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("SweepCtx(ls=%v) = %v, want ErrDomain", ls, err)
		}
		if _, err := SweepBatchCtx(context.Background(), SweepOptions{}, node, ls, 0.5); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("SweepBatchCtx(ls=%v) = %v, want ErrDomain", ls, err)
		}
		if _, err := SweepNodesCtx(context.Background(), SweepOptions{}, []tech.Node{node}, ls, 0.5); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("SweepNodesCtx(ls=%v) = %v, want ErrDomain", ls, err)
		}
	}
	if _, err := SweepNodesCtx(context.Background(), SweepOptions{}, nil, []float64{1e-6}, 0.5); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("SweepNodesCtx(no nodes) = %v, want ErrDomain", err)
	}
}

func TestPlanLineCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := problem(tech.Node100(), 2)
	_, err := PlanLineCtx(ctx, p, 0.01)
	if !errors.Is(err, diag.ErrCancelled) {
		t.Fatalf("PlanLineCtx(cancelled) = %v, want ErrCancelled", err)
	}
}

func TestPlanLineDomainLength(t *testing.T) {
	p := problem(tech.Node100(), 2)
	for _, L := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := PlanLine(p, L); !errors.Is(err, diag.ErrDomain) {
			t.Errorf("PlanLine(L=%g) = %v, want ErrDomain", L, err)
		}
	}
}
