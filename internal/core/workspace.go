package core

import (
	"math"

	"rlcint/internal/num"
)

// Seed warm-starts an optimization from the converged solution of a
// neighboring problem (an adjacent grid point of a sweep, or the previous
// point of a continuation trajectory). The zero value means "cold start".
type Seed struct {
	H, K float64 // starting point for the stationarity Newton
	// Tau, when positive, is the delay at (H, K); it seeds the Padé
	// threshold-crossing solves of the warm ladder (see pade.DelaySeeded).
	Tau float64
}

// Valid reports whether the seed names a usable starting point.
func (s Seed) Valid() bool {
	return s.H > 0 && s.K > 0 && !math.IsInf(s.H, 1) && !math.IsInf(s.K, 1)
}

// AsSeed converts a converged optimum into a seed for a neighboring problem.
func (o Optimum) AsSeed() Seed { return Seed{H: o.H, K: o.K, Tau: o.Tau} }

// cand is one feasible candidate admitted by an optimizer ladder rung.
type cand struct {
	h, k   float64
	pu     float64
	method Method
	iters  int
}

// Workspace holds every reusable buffer of the optimizer ladder — the
// NewtonND and Nelder–Mead scratch state, the candidate list, and the warm
// delay hint — so repeated OptimizeSeeded/OptimizeWS calls on one worker
// allocate (almost) nothing. A zero value / NewWorkspace result is ready to
// use. A Workspace is owned by exactly one goroutine at a time; it is not
// safe for concurrent use.
type Workspace struct {
	newton num.NewtonNDWS
	nm     num.NelderMeadWS
	cands  []cand
	// warm gates the delay-solve hint: when set, Problem.Eval seeds the
	// threshold-crossing Newton from lastTau via pade.DelaySeeded instead of
	// running the cold bracketing scan. Only OptimizeSeeded with a Tau-
	// carrying seed sets it, so cold solves stay bit-identical to the
	// workspace-free path.
	warm    bool
	lastTau float64
}

// NewWorkspace returns an empty optimizer workspace.
func NewWorkspace() *Workspace { return &Workspace{} }
