package core

import (
	"math"
	"testing"

	"rlcint/internal/num"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func problem(node tech.Node, lNHmm float64) Problem {
	return Problem{
		Device: repeater.FromTech(node),
		Line:   tline.Line{R: node.R, L: lNHmm * tech.NHPerMM, C: node.C},
	}
}

func TestCoeffDerivsMatchFiniteDifferences(t *testing.T) {
	p := problem(tech.Node100(), 2)
	h0, k0 := 11.1*tech.MM, 528.0
	b1f := func(h, k float64) float64 { b1, _, _, _, _, _ := p.coeffDerivs(h, k); return b1 }
	b2f := func(h, k float64) float64 { _, b2, _, _, _, _ := p.coeffDerivs(h, k); return b2 }
	_, _, db1h, db1k, db2h, db2k := p.coeffDerivs(h0, k0)

	checks := []struct {
		name     string
		analytic float64
		fd       float64
	}{
		{"db1/dh", db1h, num.CentralDiff(func(h float64) float64 { return b1f(h, k0) }, h0)},
		{"db1/dk", db1k, num.CentralDiff(func(k float64) float64 { return b1f(h0, k) }, k0)},
		{"db2/dh", db2h, num.CentralDiff(func(h float64) float64 { return b2f(h, k0) }, h0)},
		{"db2/dk", db2k, num.CentralDiff(func(k float64) float64 { return b2f(h0, k) }, k0)},
	}
	for _, c := range checks {
		if math.Abs(c.analytic-c.fd) > 1e-5*math.Abs(c.fd)+1e-30 {
			t.Errorf("%s: analytic %v, FD %v", c.name, c.analytic, c.fd)
		}
	}
}

func TestCoeffsMatchStageSeries(t *testing.T) {
	// b1, b2 from coeffDerivs must equal the series coefficients of the
	// stage built through the repeater scaling.
	p := problem(tech.Node250(), 3)
	h, k := 14.4*tech.MM, 578.0
	b1, b2, _, _, _, _ := p.coeffDerivs(h, k)
	d := p.Device.Stage(p.Line, h, k).DenominatorSeries(3)
	if math.Abs(b1-d[1])/d[1] > 1e-12 || math.Abs(b2-d[2])/d[2] > 1e-12 {
		t.Errorf("coeffs (%v,%v) != series (%v,%v)", b1, b2, d[1], d[2])
	}
}

func TestPoleDerivsMatchFiniteDifferences(t *testing.T) {
	p := problem(tech.Node100(), 2)
	h0, k0 := 13.0*tech.MM, 300.0 // generic point away from critical damping
	s1, s2, ds1h, ds1k, ds2h, ds2k, err := p.poleDerivs(h0, k0)
	if err != nil {
		t.Fatalf("poleDerivs: %v", err)
	}
	// Poles satisfy 1 + b1 s + b2 s² = 0.
	b1, b2, _, _, _, _ := p.coeffDerivs(h0, k0)
	for _, s := range []complex128{s1, s2} {
		res := complex(1, 0) + complex(b1, 0)*s + complex(b2, 0)*s*s
		if math.Hypot(real(res), imag(res)) > 1e-6*math.Hypot(real(s*s*complex(b2, 0)), imag(s*s*complex(b2, 0))) {
			t.Errorf("pole residual at %v", s)
		}
	}
	// FD on the real/imaginary parts of s1 w.r.t. h.
	rePole := func(h, k float64) (float64, float64) {
		s1n, _, _, _, _, _, err := p.poleDerivs(h, k)
		if err != nil {
			t.Fatalf("FD eval: %v", err)
		}
		return real(s1n), imag(s1n)
	}
	eps := 1e-6 * h0
	rp, ip := rePole(h0+eps, k0)
	rm, im := rePole(h0-eps, k0)
	fdRe, fdIm := (rp-rm)/(2*eps), (ip-im)/(2*eps)
	if math.Abs(real(ds1h)-fdRe) > 1e-4*math.Abs(fdRe)+1e-3*math.Abs(real(s1)/h0) {
		t.Errorf("Re ds1/dh: analytic %v, FD %v", real(ds1h), fdRe)
	}
	if math.Abs(imag(ds1h)-fdIm) > 1e-4*math.Abs(fdIm)+1e-3*math.Abs(real(s1)/h0) {
		t.Errorf("Im ds1/dh: analytic %v, FD %v", imag(ds1h), fdIm)
	}
	// k-derivatives: check via the sum s1+s2 = -b1/b2 identity.
	_, _, db1h, db1k, db2h, db2k := p.coeffDerivs(h0, k0)
	_ = db1h
	_ = db2h
	wantSumK := complex(-(db1k*b2-b1*db2k)/(b2*b2), 0)
	if gotSumK := ds1k + ds2k; math.Hypot(real(gotSumK-wantSumK), imag(gotSumK-wantSumK)) > 1e-6*math.Abs(real(wantSumK)) {
		t.Errorf("ds1k+ds2k = %v, want %v", gotSumK, wantSumK)
	}
	wantSumH := complex(-(db1h*b2-b1*db2h)/(b2*b2), 0)
	if gotSumH := ds1h + ds2h; math.Hypot(real(gotSumH-wantSumH), imag(gotSumH-wantSumH)) > 1e-6*math.Abs(real(wantSumH)) {
		t.Errorf("ds1h+ds2h = %v, want %v", gotSumH, wantSumH)
	}
}

func TestStationarityVanishesAtNumericalMinimum(t *testing.T) {
	// Find the minimum by brute Nelder–Mead, then check g1, g2 ≈ 0 there
	// (this validates Eqs. (7)-(8) against the direct objective).
	p := problem(tech.Node100(), 1.0)
	opt, err := Optimize(p)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	g1, g2, err := p.stationarity(opt.H, opt.K)
	if err != nil {
		t.Skipf("optimum inside critical band: %v", err)
	}
	// Scale: compare against the magnitude of g at a clearly non-optimal
	// point.
	g1far, g2far, err := p.stationarity(opt.H*1.3, opt.K*1.3)
	if err != nil {
		t.Fatalf("stationarity far: %v", err)
	}
	if math.Abs(g1) > 1e-3*math.Abs(g1far) {
		t.Errorf("g1 at optimum = %v (far %v)", g1, g1far)
	}
	if math.Abs(g2) > 1e-3*math.Abs(g2far) {
		t.Errorf("g2 at optimum = %v (far %v)", g2, g2far)
	}
}

func TestOptimizeIsLocalMinimum(t *testing.T) {
	for _, node := range tech.Nodes() {
		for _, l := range []float64{0, 0.5, 2, 4.5} {
			p := problem(node, l)
			opt, err := Optimize(p)
			if err != nil {
				t.Fatalf("%s l=%v: %v", node.Name, l, err)
			}
			base := opt.PerUnit
			for _, dh := range []float64{-0.03, 0.03} {
				for _, dk := range []float64{-0.03, 0.03} {
					pu := p.PerUnitDelay(opt.H*(1+dh), opt.K*(1+dk))
					if pu < base*(1-1e-6) {
						t.Errorf("%s l=%v: perturbation (%v,%v) improves: %v < %v",
							node.Name, l, dh, dk, pu, base)
					}
				}
			}
		}
	}
}

func TestOptimizeAtZeroInductanceNearRCOpt(t *testing.T) {
	// Paper, Section 3.1: at l=0 the two-pole optimum has h slightly SMALLER
	// than h_optRC (an effect the curve-fitted baselines cannot show).
	for _, node := range tech.Nodes() {
		p := problem(node, 0)
		opt, err := Optimize(p)
		if err != nil {
			t.Fatalf("%s: %v", node.Name, err)
		}
		rc, _ := OptimizeRC(p)
		ratio := opt.H / rc.H
		if ratio >= 1.0 || ratio < 0.5 {
			t.Errorf("%s: h ratio at l=0 = %v, want slightly below 1", node.Name, ratio)
		}
		kratio := opt.K / rc.K
		if kratio < 0.5 || kratio > 1.5 {
			t.Errorf("%s: k ratio at l=0 = %v, want near 1", node.Name, kratio)
		}
	}
}

func TestOptimizeTrendsWithInductance(t *testing.T) {
	// Paper Figures 5 and 6: h_optRLC grows and k_optRLC shrinks with l.
	node := tech.Node100()
	var prevH, prevK float64
	for i, l := range []float64{0.5, 1.5, 3, 4.5} {
		opt, err := Optimize(problem(node, l))
		if err != nil {
			t.Fatalf("l=%v: %v", l, err)
		}
		if i > 0 {
			if opt.H <= prevH {
				t.Errorf("l=%v: h did not increase (%v <= %v)", l, opt.H, prevH)
			}
			if opt.K >= prevK {
				t.Errorf("l=%v: k did not decrease (%v >= %v)", l, opt.K, prevK)
			}
		}
		prevH, prevK = opt.H, opt.K
	}
}

func TestOptimizeKAsymptoteMatchesZ0(t *testing.T) {
	// Figure 6's interpretation: at large l, the optimal driver's output
	// resistance approaches the lossless characteristic impedance.
	// At l = 5 nH/mm the asymptote is approached but not reached; require
	// that the optimal driver resistance moves monotonically from the RC
	// value toward Z0 (and never past it).
	node := tech.Node100()
	rcR := node.Rs / 528.0
	prev := rcR
	for _, l := range []float64{1, 2.5, 4.8} {
		p := problem(node, l)
		opt, err := Optimize(p)
		if err != nil {
			t.Fatal(err)
		}
		rDrv := node.Rs / opt.K
		z0 := p.Line.Z0LC()
		if rDrv <= prev {
			t.Errorf("l=%v: driver R %v did not increase toward Z0 (prev %v)", l, rDrv, prev)
		}
		if rDrv > z0 {
			t.Errorf("l=%v: driver R %v overshot Z0 %v", l, rDrv, z0)
		}
		prev = rDrv
	}
}

func TestEvalValidation(t *testing.T) {
	p := problem(tech.Node100(), 1)
	if _, _, err := p.Eval(-1, 100); err == nil {
		t.Error("negative h must fail")
	}
	if pu := p.PerUnitDelay(-1, 100); !math.IsInf(pu, 1) {
		t.Error("PerUnitDelay outside domain must be +Inf")
	}
	bad := p
	bad.F = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("f=1.5 must fail validation")
	}
	if _, err := Optimize(bad); err == nil {
		t.Error("Optimize must validate")
	}
}

func TestOptimizeCustomThreshold(t *testing.T) {
	// 90% delay optimization must also work and give a larger τ than 50%.
	p50 := problem(tech.Node100(), 1)
	p90 := p50
	p90.F = 0.9
	o50, err := Optimize(p50)
	if err != nil {
		t.Fatal(err)
	}
	o90, err := Optimize(p90)
	if err != nil {
		t.Fatal(err)
	}
	if o90.PerUnit <= o50.PerUnit {
		t.Errorf("90%% per-unit delay %v should exceed 50%%'s %v", o90.PerUnit, o50.PerUnit)
	}
}

func TestNewtonPathIterationBudget(t *testing.T) {
	// The paper: "convergence is achieved in less than six iterations in
	// all cases" for its Newton on (g1, g2). Our damped Newton with a
	// finite-difference Jacobian needs a few more, but where the cold-start
	// Newton path wins it must still converge in a small handful.
	p := problem(tech.Node250(), 0.1)
	opt, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Method == MethodNewton && opt.Iterations > 15 {
		t.Errorf("Newton path took %d iterations", opt.Iterations)
	}
}
