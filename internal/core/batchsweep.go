package core

import (
	"context"
	"fmt"

	"rlcint/internal/batch"
	"rlcint/internal/diag"
	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// SweepOptions configure the batched sweep engine (SweepBatchCtx and
// SweepNodesCtx). The zero value is the safe default: cold starts, one
// point per tile, GOMAXPROCS workers — maximally parallel and bit-identical
// to the serial SweepCtx reference at any worker count.
type SweepOptions struct {
	// Workers bounds the worker pool (≤0 → GOMAXPROCS). Never affects
	// results.
	Workers int
	// TileSize is the number of consecutive inductance points one worker
	// owns (≤0 → 1 when cold, 8 when warm). It is fixed independently of
	// Workers, so results are bit-identical across worker counts; it is
	// part of the result contract in warm mode (it decides which points are
	// continuation-seeded).
	TileSize int
	// Warm enables Newton warm-start continuation: each tile's first point
	// seeds the stationarity solve from the row's l=0 reference optimum,
	// and every later point of the tile from the previous point's converged
	// optimum (seeding the threshold-crossing delay solves the same way).
	// Any doubt falls back to the exact cold ladder. Warm results agree
	// with cold ones to ≤1e-12 relative on the optimized per-unit delay
	// (the objective); the optimizer arguments h, k and the derived ratios
	// agree only to the stationarity tolerance (~1e-6 relative) and are not
	// bit-identical. Leave false for exact reproduction of the serial
	// reference path.
	Warm bool
	// Limits bound the whole sweep; MaxIters counts batch work items (one
	// per node reference plus one per grid point).
	Limits runctl.Limits
	// Injector injects optimizer faults into every point's solve for
	// testing (nil in production). Never affects results when nil.
	Injector *diag.Injector
}

func (o SweepOptions) tileSize() int {
	if o.TileSize > 0 {
		return o.TileSize
	}
	if o.Warm {
		return 8
	}
	return 1
}

// NodeSweep pairs a technology node with its Section 3 sweep row.
type NodeSweep struct {
	Node   tech.Node
	Points []SweepPoint
}

// nodeRefs are the per-node reference quantities shared by every inductance
// point of that node's row: the RC optimum and the l=0 optimum of the same
// two-pole machinery.
type nodeRefs struct {
	base    Problem
	rc      repeater.RCOptimum
	zeroOpt Optimum
}

func nodeRefsOf(ctx context.Context, node tech.Node, f float64, ws *Workspace) (nodeRefs, error) {
	base := Problem{
		Device: repeaterOf(node),
		Line:   tline.Line{R: node.R, C: node.C},
		F:      f,
	}
	rc, err := OptimizeRC(base)
	if err != nil {
		return nodeRefs{}, err
	}
	zero := base
	zero.Line.L = 0
	zeroOpt, err := OptimizeWS(ctx, zero, ws)
	if err != nil {
		if runctl.IsStop(err) {
			return nodeRefs{}, err
		}
		return nodeRefs{}, fmt.Errorf("core: Sweep l=0 reference: %w", err)
	}
	return nodeRefs{base: base, rc: rc, zeroOpt: zeroOpt}, nil
}

// sweepScratch is the per-worker state of the point phase: the reusable
// optimizer workspace plus the warm-start seed chained from the previous
// point of the current tile.
type sweepScratch struct {
	ws   *Workspace
	seed Seed
	has  bool
}

// SweepNodesCtx runs the full Section 3 study for several technology nodes
// through the batched engine: first the per-node references (RC and l=0
// optima) evaluate concurrently, then the nodes×ls point grid runs tiled
// across the pool, row-bounded so continuation never chains across nodes.
// Results are deterministic for fixed SweepOptions: worker count changes
// wall-clock time only. With Warm unset every optimum is bit-identical to
// the serial SweepCtx reference.
//
// On an error or a run-control stop, the completed prefix of rows (the last
// possibly partial) is returned alongside the typed error.
func SweepNodesCtx(ctx context.Context, opts SweepOptions, nodes []tech.Node, ls []float64, f float64) ([]NodeSweep, error) {
	if err := validateGrid("core.SweepNodes", ls); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, diag.Domainf("core.SweepNodes", "no technology nodes")
	}
	ctl := runctl.New(ctx, opts.Limits)
	refs, err := batch.Run(ctl, len(nodes),
		batch.Options{Workers: opts.Workers, TileSize: 1},
		NewWorkspace,
		func(ws *Workspace, i int, _ bool) (nodeRefs, error) {
			return nodeRefsOf(ctl.Context(), nodes[i], f, ws)
		})
	if err != nil {
		return assembleRows(nodes, nil, len(ls)), err
	}

	flat, err := batch.Run(ctl, len(nodes)*len(ls),
		batch.Options{Workers: opts.Workers, TileSize: opts.tileSize(), RowLen: len(ls)},
		func() *sweepScratch { return &sweepScratch{ws: NewWorkspace()} },
		func(s *sweepScratch, i int, warm bool) (SweepPoint, error) {
			row, col := i/len(ls), i%len(ls)
			r := refs[row]
			p := r.base
			p.Line.L = ls[col]
			p.Injector = opts.Injector
			var seed Seed
			if opts.Warm {
				if warm && s.has {
					seed = s.seed
				} else {
					// Tile-leading point: continuation starts from the
					// row's l=0 reference optimum, which is exact for the
					// first grid point and a good basin guess elsewhere.
					seed = r.zeroOpt.AsSeed()
				}
			}
			opt, err := OptimizeSeeded(ctl.Context(), p, seed, s.ws)
			if err != nil {
				s.has = false
				if runctl.IsStop(err) {
					return SweepPoint{}, err
				}
				return SweepPoint{}, fmt.Errorf("core: Sweep l=%g: %w", ls[col], err)
			}
			s.seed, s.has = opt.AsSeed(), true
			return SweepPoint{
				L:          ls[col],
				Opt:        opt,
				LCrit:      pade.LCrit(p.Device.Stage(p.Line, opt.H, opt.K)),
				HRatio:     opt.H / r.rc.H,
				KRatio:     opt.K / r.rc.K,
				DelayRatio: opt.PerUnit / r.zeroOpt.PerUnit,
				Penalty:    p.PerUnitDelay(r.rc.H, r.rc.K) / opt.PerUnit,
			}, nil
		})
	return assembleRows(nodes, flat, len(ls)), err
}

// assembleRows folds the flat completed prefix back into per-node rows; the
// last row may be partial when the run was cut short.
func assembleRows(nodes []tech.Node, flat []SweepPoint, rowLen int) []NodeSweep {
	out := make([]NodeSweep, 0, len(nodes))
	for row := 0; row < len(nodes); row++ {
		if rowLen == 0 {
			out = append(out, NodeSweep{Node: nodes[row]})
			continue
		}
		lo := row * rowLen
		if lo >= len(flat) {
			break
		}
		hi := lo + rowLen
		if hi > len(flat) {
			hi = len(flat)
		}
		out = append(out, NodeSweep{Node: nodes[row], Points: flat[lo:hi]})
	}
	return out
}

// SweepBatchCtx is the batched counterpart of SweepCtx for one node: same
// study, same results (bit-identical when opts.Warm is unset), evaluated by
// the parallel engine.
func SweepBatchCtx(ctx context.Context, opts SweepOptions, node tech.Node, ls []float64, f float64) ([]SweepPoint, error) {
	rows, err := SweepNodesCtx(ctx, opts, []tech.Node{node}, ls, f)
	if len(rows) >= 1 {
		return rows[0].Points, err
	}
	return nil, err
}
