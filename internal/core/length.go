package core

import (
	"fmt"
	"math"
)

// LengthPoint is one sample of the unbuffered-segment delay versus length.
type LengthPoint struct {
	H   float64 // segment length, m
	Tau float64 // f×100% delay of one driver–line–load stage, s
}

// DelayVsLength samples the stage delay over segment lengths at a fixed
// repeater size k. The paper uses this relationship qualitatively: "with
// increasing line inductance the RLC interconnect increasingly resembles an
// ideal LC transmission line and the delay becomes progressively linear
// with interconnect length" (Section 3.1).
func DelayVsLength(p Problem, k float64, hs []float64) ([]LengthPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: DelayVsLength requires k > 0")
	}
	out := make([]LengthPoint, 0, len(hs))
	for _, h := range hs {
		_, d, err := p.Eval(h, k)
		if err != nil {
			return nil, fmt.Errorf("core: DelayVsLength h=%g: %w", h, err)
		}
		out = append(out, LengthPoint{H: h, Tau: d.Tau})
	}
	return out, nil
}

// DelayGrowthExponent estimates d(ln τ)/d(ln h) at (h, k): 2 in the
// RC/diffusive limit (τ ∝ h²), 1 in the LC/wave limit (τ ∝ h). The paper's
// linearity observation is this exponent approaching 1 as l grows.
func DelayGrowthExponent(p Problem, h, k float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	const eps = 0.02
	_, dLo, err := p.Eval(h*(1-eps), k)
	if err != nil {
		return 0, err
	}
	_, dHi, err := p.Eval(h*(1+eps), k)
	if err != nil {
		return 0, err
	}
	return (math.Log(dHi.Tau) - math.Log(dLo.Tau)) /
		(math.Log(1+eps) - math.Log(1-eps)), nil
}
