package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// relDiff returns |a-b| / max(|a|, |b|) (0 when both are 0).
func relDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// pointsBitEqual fails the test unless the two sweeps match field-for-field
// at the bit level.
func pointsBitEqual(t *testing.T, label string, got, want []SweepPoint) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		fields := [][2]float64{
			{g.L, w.L}, {g.Opt.H, w.Opt.H}, {g.Opt.K, w.Opt.K},
			{g.Opt.Tau, w.Opt.Tau}, {g.Opt.PerUnit, w.Opt.PerUnit},
			{g.LCrit, w.LCrit}, {g.HRatio, w.HRatio}, {g.KRatio, w.KRatio},
			{g.DelayRatio, w.DelayRatio}, {g.Penalty, w.Penalty},
		}
		for f, pair := range fields {
			if pair[0] != pair[1] {
				t.Fatalf("%s: point %d field %d: %x != %x (not bit-identical)",
					label, i, f, pair[0], pair[1])
			}
		}
	}
}

// TestSweepBatchColdBitIdenticalToSerial is the engine's headline contract:
// the cold batched sweep is bit-identical to the serial reference path at
// every worker count.
func TestSweepBatchColdBitIdenticalToSerial(t *testing.T) {
	ls := sweepLs()
	ref, err := SweepCtx(context.Background(), runctl.Limits{}, tech.Node100(), ls, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := SweepBatchCtx(context.Background(),
			SweepOptions{Workers: workers}, tech.Node100(), ls, 0.5)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		pointsBitEqual(t, "cold engine vs serial", got, ref)
	}
}

// TestSweepWarmDeterministicAcrossWorkers: the warm engine's results are a
// function of the tile geometry only — never of the worker count.
func TestSweepWarmDeterministicAcrossWorkers(t *testing.T) {
	ls := sweepLs()
	nodes := []tech.Node{tech.Node250(), tech.Node100()}
	ref, err := SweepNodesCtx(context.Background(),
		SweepOptions{Workers: 1, Warm: true}, nodes, ls, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := SweepNodesCtx(context.Background(),
			SweepOptions{Workers: workers, Warm: true}, nodes, ls, 0.5)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got), len(ref))
		}
		for r := range ref {
			pointsBitEqual(t, "warm engine across workers", got[r].Points, ref[r].Points)
		}
	}
}

// TestSweepWarmAgreesWithCold pins the continuation agreement contract: the
// objective-derived quantities (per-unit delay, delay ratio, penalty) agree
// to ≤1e-12 relative; the optimizer arguments h, k (and everything scaling
// with them) to the stationarity tolerance.
func TestSweepWarmAgreesWithCold(t *testing.T) {
	ls := sweepLs()
	cold, err := SweepBatchCtx(context.Background(), SweepOptions{}, tech.Node100(), ls, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SweepBatchCtx(context.Background(), SweepOptions{Warm: true}, tech.Node100(), ls, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	const objTol = 1e-12 // objective: quadratically flat at the optimum
	const argTol = 1e-5  // arguments: limited by the 1e-7 stationarity tolerance
	for i := range cold {
		c, w := cold[i], warm[i]
		for _, q := range []struct {
			name string
			c, w float64
			tol  float64
		}{
			{"PerUnit", c.Opt.PerUnit, w.Opt.PerUnit, objTol},
			{"DelayRatio", c.DelayRatio, w.DelayRatio, objTol},
			{"Penalty", c.Penalty, w.Penalty, objTol},
			{"H", c.Opt.H, w.Opt.H, argTol},
			{"K", c.Opt.K, w.Opt.K, argTol},
			{"Tau", c.Opt.Tau, w.Opt.Tau, argTol},
			{"HRatio", c.HRatio, w.HRatio, argTol},
			{"KRatio", c.KRatio, w.KRatio, argTol},
			{"LCrit", c.LCrit, w.LCrit, argTol},
		} {
			if d := relDiff(q.c, q.w); d > q.tol {
				t.Errorf("l=%g %s: warm %v vs cold %v (rel %.2e > %.0e)",
					c.L, q.name, q.w, q.c, d, q.tol)
			}
		}
	}
}

// warmTestProblem is a mid-range 100nm instance used by the seeded-optimize
// tests, with a seed taken from the converged optimum at a neighboring
// inductance.
func warmTestProblem(t *testing.T) (Problem, Seed) {
	t.Helper()
	node := tech.Node100()
	p := Problem{Device: repeaterOf(node), Line: tline.Line{R: node.R, C: node.C, L: 2e-6}, F: 0.5}
	q := p
	q.Line.L = 1.8e-6
	nb, err := OptimizeCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return p, nb.AsSeed()
}

// TestOptimizeSeededAgreesWithCold: a continuation-seeded solve lands on the
// cold ladder's optimum (objective ≤1e-12, arguments to the stationarity
// tolerance) and actually takes the warm fast path.
func TestOptimizeSeededAgreesWithCold(t *testing.T) {
	p, seed := warmTestProblem(t)
	cold, err := OptimizeCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	rep := &diag.Report{}
	pw := p
	pw.Report = rep
	warm, err := OptimizeSeeded(context.Background(), pw, seed, NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(cold.PerUnit, warm.PerUnit); d > 1e-12 {
		t.Errorf("PerUnit: warm %v vs cold %v (rel %.2e)", warm.PerUnit, cold.PerUnit, d)
	}
	if d := relDiff(cold.H, warm.H); d > 1e-5 {
		t.Errorf("H: warm %v vs cold %v (rel %.2e)", warm.H, cold.H, d)
	}
	if d := relDiff(cold.K, warm.K); d > 1e-5 {
		t.Errorf("K: warm %v vs cold %v (rel %.2e)", warm.K, cold.K, d)
	}
	// The fast path: exactly one rung ran, and it was the warm start.
	if len(rep.Attempts) != 1 || rep.Attempts[0].Rung != "warm-start" ||
		rep.Attempts[0].Outcome != diag.OutcomeOK {
		t.Errorf("expected a single OK warm-start rung, got:\n%s", rep)
	}
}

// TestOptimizeSeededFaultFallsBackToCold injects a Newton fault only at the
// warm rung (Step == -2) and checks the ladder falls back to a result
// bit-identical to the cold solve, with the recovery rungs recorded.
func TestOptimizeSeededFaultFallsBackToCold(t *testing.T) {
	p, seed := warmTestProblem(t)
	cold, err := OptimizeCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected warm-start fault")
	rep := &diag.Report{}
	pw := p
	pw.Report = rep
	pw.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "core.stationarity" && s.Step == -2 {
			return boom
		}
		return nil
	}}
	warm, err := OptimizeSeeded(context.Background(), pw, seed, NewWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	if warm.H != cold.H || warm.K != cold.K || warm.Tau != cold.Tau ||
		warm.PerUnit != cold.PerUnit || warm.Method != cold.Method {
		t.Errorf("fallback result differs from cold solve:\nwarm %+v\ncold %+v", warm, cold)
	}
	var warmFailed, coldRan bool
	for _, a := range rep.Attempts {
		if a.Rung == "warm-start" && a.Outcome == diag.OutcomeFailed {
			warmFailed = true
		}
		if a.Rung == "cold-start" {
			coldRan = true
		}
	}
	if !warmFailed || !coldRan {
		t.Errorf("expected a failed warm-start rung followed by the cold ladder, got:\n%s", rep)
	}
}

// TestOptimizeSeededInvalidSeedIsCold: a zero/invalid seed must reproduce
// the cold path bit-for-bit (it is the same code path).
func TestOptimizeSeededInvalidSeedIsCold(t *testing.T) {
	p, _ := warmTestProblem(t)
	cold, err := OptimizeCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []Seed{{}, {H: -1, K: 1, Tau: 1}, {H: math.Inf(1), K: 1, Tau: 1}} {
		got, err := OptimizeSeeded(context.Background(), p, seed, NewWorkspace())
		if err != nil {
			t.Fatal(err)
		}
		if got.H != cold.H || got.K != cold.K || got.PerUnit != cold.PerUnit {
			t.Errorf("seed %+v: result differs from cold solve", seed)
		}
	}
}

// TestSweepNodesPartialPrefixOnBudget: a budget stop returns the completed
// prefix of rows with a typed error, like the serial reference.
func TestSweepNodesPartialPrefixOnBudget(t *testing.T) {
	ls := sweepLs()
	nodes := []tech.Node{tech.Node250(), tech.Node100()}
	// Budget: the 2 reference solves plus 3 grid points.
	rows, err := SweepNodesCtx(context.Background(),
		SweepOptions{Workers: 1, Warm: true, Limits: runctl.Limits{MaxIters: 5}},
		nodes, ls, 0.5)
	if !errors.Is(err, diag.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	total := 0
	for _, r := range rows {
		total += len(r.Points)
	}
	if total > 3 {
		t.Errorf("completed %d points on a 5-iteration budget", total)
	}
}
