package core

import (
	"context"
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// SweepPoint is one inductance point of the paper's Section 3 studies; it
// carries every quantity Figures 4–8 plot.
type SweepPoint struct {
	L float64 // line inductance per unit length, H/m

	Opt Optimum // RLC optimum at this l

	LCrit float64 // Eq. (4) at the optimal (h, k) — Figure 4

	HRatio float64 // h_optRLC / h_optRC — Figure 5
	KRatio float64 // k_optRLC / k_optRC — Figure 6

	// DelayRatio is (τ/h) at the RLC optimum for this l divided by (τ/h) at
	// the l=0 optimum of the same machinery — Figure 7 ("with and without
	// considering line inductance").
	DelayRatio float64

	// Penalty is τ/h evaluated at the fixed RC-optimal sizing (h_optRC,
	// k_optRC) with this l, divided by the optimal τ/h at the same l —
	// Figure 8 (the cost of ignoring inductance when sizing).
	Penalty float64
}

// Sweep runs the full Section 3 study for one technology node over the given
// per-unit-length inductances (H/m), at threshold f (0 → 50%).
func Sweep(node tech.Node, ls []float64, f float64) ([]SweepPoint, error) {
	return SweepCtx(context.Background(), runctl.Limits{}, node, ls, f)
}

// validateGrid rejects unusable inductance grids uniformly across every
// sweep entry point: an empty grid and non-finite points are ErrDomain
// failures rather than a silently empty result. The serving layer feeds
// these grids from untrusted JSON, so the rejection must be typed.
func validateGrid(op string, ls []float64) error {
	if len(ls) == 0 {
		return diag.Domainf(op, "empty inductance grid")
	}
	for i, l := range ls {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return diag.Domainf(op, "ls[%d]=%g is not finite", i, l)
		}
	}
	return nil
}

// SweepCtx is Sweep under run control: cancellation and limits are checked
// before each inductance point (MaxIters counts points), and a stopped
// sweep returns the completed prefix alongside the typed stop error so
// callers can persist partial studies.
func SweepCtx(ctx context.Context, lim runctl.Limits, node tech.Node, ls []float64, f float64) (out []SweepPoint, err error) {
	defer diag.RecoverTo(&err, "core.Sweep")
	if err := validateGrid("core.Sweep", ls); err != nil {
		return nil, err
	}
	ctl := runctl.New(ctx, lim)
	base := Problem{
		Device: repeaterOf(node),
		Line:   tline.Line{R: node.R, C: node.C},
		F:      f,
	}
	rc, err := OptimizeRC(base)
	if err != nil {
		return nil, err
	}
	// Reference: optimum of the same two-pole machinery with l = 0.
	zero := base
	zero.Line.L = 0
	zeroOpt, err := OptimizeCtx(ctl.Context(), zero)
	if err != nil {
		if runctl.IsStop(err) {
			return nil, err
		}
		return nil, fmt.Errorf("core: Sweep l=0 reference: %w", err)
	}

	out = make([]SweepPoint, 0, len(ls))
	for _, l := range ls {
		if err := ctl.Tick("core.Sweep"); err != nil {
			return out, err
		}
		p := base
		p.Line.L = l
		opt, err := OptimizeCtx(ctl.Context(), p)
		if err != nil {
			if runctl.IsStop(err) {
				return out, err
			}
			return out, fmt.Errorf("core: Sweep l=%g: %w", l, err)
		}
		pt := SweepPoint{
			L:          l,
			Opt:        opt,
			LCrit:      pade.LCrit(p.Device.Stage(p.Line, opt.H, opt.K)),
			HRatio:     opt.H / rc.H,
			KRatio:     opt.K / rc.K,
			DelayRatio: opt.PerUnit / zeroOpt.PerUnit,
			Penalty:    p.PerUnitDelay(rc.H, rc.K) / opt.PerUnit,
		}
		out = append(out, pt)
	}
	return out, nil
}

func repeaterOf(node tech.Node) repeater.MinDevice {
	return repeater.FromTech(node)
}
