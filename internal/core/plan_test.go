package core

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func TestPlanLineBasicConsistency(t *testing.T) {
	p := problem(tech.Node100(), 2)
	L := 50e-3
	plan, err := PlanLine(p, L)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages < 1 {
		t.Fatalf("stages %d", plan.Stages)
	}
	if math.Abs(plan.H*float64(plan.Stages)-L) > 1e-12*L {
		t.Errorf("segments don't tile the net: %v × %d != %v", plan.H, plan.Stages, L)
	}
	if math.Abs(plan.Total-float64(plan.Stages)*plan.StageTau) > 1e-15 {
		t.Error("total != stages × stage delay")
	}
	// The realized plan cannot beat the continuous optimum's rate, but
	// must be close (within a few % for ≥3 stages).
	contTotal := plan.Continuous.PerUnit * L
	if plan.Total < contTotal*(1-1e-9) {
		t.Errorf("plan (%v) beats the continuous bound (%v)", plan.Total, contTotal)
	}
	if plan.Stages >= 3 && plan.Total > contTotal*1.10 {
		t.Errorf("plan %v more than 10%% above continuous %v", plan.Total, contTotal)
	}
}

func TestPlanLineNeighbourCountsNotBetter(t *testing.T) {
	// The chosen stage count must beat its neighbours when evaluated the
	// same way.
	p := problem(tech.Node100(), 1)
	L := 40e-3
	plan, err := PlanLine(p, L)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{plan.Stages - 1, plan.Stages + 1} {
		if n < 1 {
			continue
		}
		h := L / float64(n)
		k, err := optimizeKAtFixedH(p, h, plan.Continuous.K)
		if err != nil {
			continue
		}
		_, d, err := p.Eval(h, k)
		if err != nil {
			continue
		}
		if tot := float64(n) * d.Tau; tot < plan.Total*(1-1e-9) {
			t.Errorf("neighbour %d stages (%v) beats chosen %d (%v)", n, tot, plan.Stages, plan.Total)
		}
	}
}

func TestPlanLineShortNet(t *testing.T) {
	// A net shorter than one optimal segment uses a single stage.
	p := problem(tech.Node100(), 2)
	plan, err := PlanLine(p, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages != 1 {
		t.Errorf("short net used %d stages", plan.Stages)
	}
	if plan.H != 3e-3 {
		t.Errorf("h = %v, want full net", plan.H)
	}
}

func TestPlanLineValidation(t *testing.T) {
	p := problem(tech.Node100(), 1)
	if _, err := PlanLine(p, -1); err == nil {
		t.Error("negative length must fail")
	}
	bad := p
	bad.F = 7
	if _, err := PlanLine(bad, 0.01); err == nil {
		t.Error("invalid problem must fail")
	}
}
