package core

import (
	"context"
	"fmt"
	"math"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
)

// LinePlan is a realizable repeater plan for a net of a given total length:
// the optimizer's continuous h is rounded to an integer stage count and the
// delay re-evaluated at the actual segment length.
type LinePlan struct {
	Length   float64 // total net length, m
	Stages   int     // number of repeater stages (≥ 1)
	H        float64 // realized segment length = Length/Stages
	K        float64 // repeater size
	StageTau float64 // per-stage delay at the realized h, s
	Total    float64 // end-to-end delay = Stages·StageTau, s
	// Continuous is the unrounded optimum the plan was derived from.
	Continuous Optimum
}

// PlanLine turns the continuous optimum into a realizable plan for a net of
// length L: it evaluates the candidate stage counts around L/h_opt
// (including the ±1 neighbours) at the re-optimized k for each candidate's
// segment length, and returns the fastest.
func PlanLine(p Problem, L float64) (LinePlan, error) {
	return PlanLineCtx(context.Background(), p, L)
}

// PlanLineCtx is PlanLine under run control: cancellation, the context
// deadline, and p.Limits are checked at every inner optimizer iteration, so
// a stopped plan aborts promptly with a typed stop error.
func PlanLineCtx(ctx context.Context, p Problem, L float64) (LinePlan, error) {
	if err := p.Validate(); err != nil {
		return LinePlan{}, err
	}
	if L <= 0 || math.IsNaN(L) || math.IsInf(L, 0) {
		return LinePlan{}, diag.Domainf("core.PlanLine", "requires positive finite length, got %g", L)
	}
	// One workspace serves the optimization and every fixed-h refinement
	// below, so the plan path allocates a handful of buffers once instead
	// of churning per candidate evaluation.
	opt, err := OptimizeWS(ctx, p, NewWorkspace())
	if err != nil {
		return LinePlan{}, err
	}
	// Wire the context into the refinement evaluations below: Eval checks
	// p.ctl, so a cancelled plan stops between candidate evaluations instead
	// of finishing the golden-section scans on a dead request.
	p.ctl = runctl.New(ctx, runctl.Limits{})
	nIdeal := L / opt.H
	best := LinePlan{Continuous: opt, Length: L, Total: math.Inf(1)}
	for _, n := range []int{int(math.Floor(nIdeal)), int(math.Ceil(nIdeal)), int(math.Round(nIdeal)) + 1} {
		if n < 1 {
			n = 1
		}
		h := L / float64(n)
		// Re-optimize the repeater size for this fixed segment length.
		k, err := optimizeKAtFixedH(p, h, opt.K)
		if err != nil {
			// A stop mid-scan surfaces as an infeasible candidate; recover
			// the typed stop so callers see ErrCancelled, not "no plan".
			if e := p.ctl.Check("core.PlanLine"); e != nil {
				return LinePlan{}, e
			}
			continue
		}
		_, d, err := p.Eval(h, k)
		if err != nil {
			if runctl.IsStop(err) {
				return LinePlan{}, err
			}
			continue
		}
		total := float64(n) * d.Tau
		if total < best.Total {
			best.Stages = n
			best.H = h
			best.K = k
			best.StageTau = d.Tau
			best.Total = total
		}
	}
	if math.IsInf(best.Total, 1) {
		return LinePlan{}, fmt.Errorf("core: PlanLine found no feasible stage count for L=%g", L)
	}
	return best, nil
}

// optimizeKAtFixedH minimizes the stage delay over k at a fixed segment
// length using golden-section search around the seed.
func optimizeKAtFixedH(p Problem, h, kSeed float64) (float64, error) {
	obj := func(k float64) float64 {
		_, d, err := p.Eval(h, k)
		if err != nil {
			return math.Inf(1)
		}
		return d.Tau
	}
	lo, hi := kSeed/8, kSeed*8
	// Coarse scan to bracket the minimum (the objective is unimodal in k
	// for physical stages, but guard anyway).
	const nScan = 24
	bestK, bestV := kSeed, obj(kSeed)
	for i := 0; i <= nScan; i++ {
		k := lo * math.Pow(hi/lo, float64(i)/nScan)
		if v := obj(k); v < bestV {
			bestK, bestV = k, v
		}
	}
	a, b := bestK/1.5, bestK*1.5
	k := bestK
	// Golden-section refinement.
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := obj(x1), obj(x2)
	for i := 0; i < 60 && (b-a) > 1e-6*k; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = obj(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = obj(x2)
		}
	}
	k = 0.5 * (a + b)
	if math.IsInf(obj(k), 1) {
		return 0, fmt.Errorf("core: no feasible k at h=%g", h)
	}
	return k, nil
}
