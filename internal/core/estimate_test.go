package core

import (
	"math"
	"testing"

	"errors"

	"rlcint/internal/diag"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

func estimateProblem(node tech.Node, l float64) Problem {
	return Problem{
		Device: repeater.FromTech(node),
		Line:   tline.Line{R: node.R, L: l, C: node.C},
		F:      0.5,
	}
}

// At l = 0 the Ismail–Friedman sizing reduces exactly to the RC optimum and
// the Elmore delay at f = 0.5 is the classical 0.69 rule.
func TestEstimateOptimumReducesToRCAtZeroInductance(t *testing.T) {
	for _, node := range []tech.Node{tech.Node250(), tech.Node100()} {
		p := estimateProblem(node, 0)
		est, err := EstimateOptimum(p)
		if err != nil {
			t.Fatalf("%s: %v", node.Name, err)
		}
		rc, err := repeater.RCOptimal(p.Device, tline.Line{R: node.R, C: node.C})
		if err != nil {
			t.Fatal(err)
		}
		if est.H != rc.H || est.K != rc.K {
			t.Errorf("%s: estimate (h=%g k=%g) != RC optimum (h=%g k=%g)",
				node.Name, est.H, est.K, rc.H, rc.K)
		}
		want := math.Ln2 * p.Device.Stage(p.Line, rc.H, rc.K).ElmoreSegment()
		if math.Abs(est.Tau-want) > 1e-18 {
			t.Errorf("%s: tau = %g, want 0.69-rule %g", node.Name, est.Tau, want)
		}
		if est.Method != MethodEstimate {
			t.Errorf("method = %q", est.Method)
		}
	}
}

// The estimate must land in the exact optimum's neighbourhood across the
// paper's inductance range — the property that makes it a usable degraded
// answer (near-optimal closed-form sizing lands within tens of percent).
func TestEstimateOptimumNearExact(t *testing.T) {
	node := tech.Node100()
	for _, l := range []float64{0, 5e-7, 1e-6, 2e-6, 4e-6} {
		p := estimateProblem(node, l)
		est, err := EstimateOptimum(p)
		if err != nil {
			t.Fatalf("l=%g: %v", l, err)
		}
		exact, err := Optimize(p)
		if err != nil {
			t.Fatalf("l=%g exact: %v", l, err)
		}
		if r := est.H / exact.H; r < 0.5 || r > 2 {
			t.Errorf("l=%g: estimate h=%g vs exact %g (ratio %g)", l, est.H, exact.H, r)
		}
		if r := est.K / exact.K; r < 0.5 || r > 2 {
			t.Errorf("l=%g: estimate k=%g vs exact %g (ratio %g)", l, est.K, exact.K, r)
		}
		// The Elmore delay metric ignores inductance, so the estimated tau
		// drifts low as l grows; the sizing stays close, the delay is a
		// bounded-accuracy indicator only.
		if r := est.PerUnit / exact.PerUnit; !(r > 0.3) || !(r < 3) {
			t.Errorf("l=%g: estimate per-unit %g vs exact %g (ratio %g)", l, est.PerUnit, exact.PerUnit, r)
		}
	}
}

func TestEstimateDelayThresholds(t *testing.T) {
	node := tech.Node100()
	st := repeater.FromTech(node).Stage(tline.Line{R: node.R, L: 2e-6, C: node.C}, 1e-3, 100)
	d50, err := EstimateDelay(st, 0) // 0 → 50%
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Ln2 * st.ElmoreSegment(); d50 != want {
		t.Errorf("EstimateDelay(0) = %g, want %g", d50, want)
	}
	d90, err := EstimateDelay(st, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if d90 <= d50 {
		t.Errorf("90%% delay %g not above 50%% delay %g", d90, d50)
	}
	for _, f := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := EstimateDelay(st, f); err == nil {
			t.Errorf("EstimateDelay(f=%g) accepted", f)
		}
	}
}

func TestEstimatePlan(t *testing.T) {
	p := estimateProblem(tech.Node100(), 2e-6)
	const L = 0.01
	plan, err := EstimatePlan(p, L)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages < 1 || plan.H*float64(plan.Stages) != L {
		t.Errorf("plan stages=%d h=%g do not tile L=%g", plan.Stages, plan.H, L)
	}
	if got, want := plan.Total, float64(plan.Stages)*plan.StageTau; got != want {
		t.Errorf("total %g != stages·stageTau %g", got, want)
	}
	if plan.Continuous.Method != MethodEstimate {
		t.Errorf("continuous method = %q", plan.Continuous.Method)
	}
	// The closed-form stage count should agree with the exact plan's to ±1.
	exact, err := PlanLine(p, L)
	if err != nil {
		t.Fatal(err)
	}
	if d := plan.Stages - exact.Stages; d < -1 || d > 1 {
		t.Errorf("estimate stages %d far from exact %d", plan.Stages, exact.Stages)
	}
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := EstimatePlan(p, bad); err == nil {
			t.Errorf("EstimatePlan(L=%g) accepted", bad)
		}
	}
}

// The estimate path must reject ill-posed problems with the same typed
// domain errors as the exact path — degraded mode never launders bad input.
func TestEstimateValidatesDomain(t *testing.T) {
	p := estimateProblem(tech.Node100(), 2e-6)
	p.F = 1.5
	if _, err := EstimateOptimum(p); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("EstimateOptimum(f=1.5) err = %v, want ErrDomain", err)
	}
	bad := estimateProblem(tech.Node100(), math.NaN())
	if _, err := EstimateOptimum(bad); !errors.Is(err, diag.ErrDomain) {
		t.Errorf("EstimateOptimum(l=NaN) err = %v, want ErrDomain", err)
	}
}
