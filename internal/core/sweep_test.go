package core

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

// sweepLs is the paper's inductance range, 0.1–4.9 nH/mm (SI).
func sweepLs() []float64 {
	return []float64{0.1e-6, 0.5e-6, 1e-6, 2e-6, 3e-6, 4e-6, 4.9e-6}
}

func TestSweepFig5HRatioShape(t *testing.T) {
	// Figure 5: h_optRLC/h_optRC starts slightly below 1 and increases
	// monotonically with l; the 100 nm curve is steeper.
	p250, err := Sweep(tech.Node250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Sweep(tech.Node100(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pts := range [][]SweepPoint{p250, p100} {
		if pts[0].HRatio >= 1.05 {
			t.Errorf("h-ratio at smallest l = %v, want ≈<1", pts[0].HRatio)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].HRatio <= pts[i-1].HRatio {
				t.Errorf("h-ratio not increasing at l=%v", pts[i].L)
			}
		}
	}
	last := len(p100) - 1
	if p100[last].HRatio <= p250[last].HRatio {
		t.Errorf("100nm h-ratio (%v) should exceed 250nm (%v) at max l",
			p100[last].HRatio, p250[last].HRatio)
	}
}

func TestSweepFig6KRatioShape(t *testing.T) {
	// Figure 6: k_optRLC/k_optRC decreases monotonically with l toward the
	// Z0-matching asymptote; the 100 nm curve sits lower.
	p250, err := Sweep(tech.Node250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Sweep(tech.Node100(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pts := range [][]SweepPoint{p250, p100} {
		for i := 1; i < len(pts); i++ {
			if pts[i].KRatio >= pts[i-1].KRatio {
				t.Errorf("k-ratio not decreasing at l=%v", pts[i].L)
			}
		}
	}
	last := len(p100) - 1
	if p100[last].KRatio >= p250[last].KRatio {
		t.Errorf("100nm k-ratio (%v) should be below 250nm (%v)",
			p100[last].KRatio, p250[last].KRatio)
	}
}

func TestSweepFig7DelayRatioShape(t *testing.T) {
	// Figure 7: the optimized delay-per-length ratio reaches ≈2 at 250 nm
	// and ≈3.5 at 100 nm over the swept range, and the εr-swapped 100 nm
	// control stays with the 100 nm curve (driver scaling, not the wire,
	// causes the susceptibility).
	p250, err := Sweep(tech.Node250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Sweep(tech.Node100(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pCtl, err := Sweep(tech.Node100WithEps250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	last := len(p250) - 1
	if r := p250[last].DelayRatio; r < 1.6 || r > 2.6 {
		t.Errorf("250nm max delay ratio = %v, paper shows ≈2", r)
	}
	if r := p100[last].DelayRatio; r < 2.4 || r > 4.2 {
		t.Errorf("100nm max delay ratio = %v, paper shows ≈3.5", r)
	}
	// Monotone growth.
	for _, pts := range [][]SweepPoint{p250, p100} {
		for i := 1; i < len(pts); i++ {
			if pts[i].DelayRatio <= pts[i-1].DelayRatio {
				t.Errorf("delay ratio not increasing at l=%v", pts[i].L)
			}
		}
	}
	// Control: identical c does not rescue the 100 nm node. (In the
	// two-pole model the ratio curves are exactly c-invariant — the
	// rescaling h→h/√γ, k→k√γ leaves b1 and b2 unchanged.)
	for i := range pCtl {
		if math.Abs(pCtl[i].DelayRatio-p100[i].DelayRatio) > 1e-6*p100[i].DelayRatio {
			t.Errorf("eps-swap ratio at l=%v deviates: %v vs %v",
				pCtl[i].L, pCtl[i].DelayRatio, p100[i].DelayRatio)
		}
		if pCtl[i].DelayRatio <= p250[i].DelayRatio {
			t.Errorf("eps-swap control not above 250nm curve at l=%v", pCtl[i].L)
		}
	}
}

func TestSweepFig8PenaltyShape(t *testing.T) {
	// Figure 8: designing at the RC optimum costs at most ≈6% (250 nm) and
	// ≈12% (100 nm) versus the RLC optimum over the swept range.
	p250, err := Sweep(tech.Node250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Sweep(tech.Node100(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	max := func(pts []SweepPoint) float64 {
		m := 0.0
		for _, p := range pts {
			if p.Penalty > m {
				m = p.Penalty
			}
		}
		return m
	}
	m250, m100 := max(p250), max(p100)
	if m250 < 1.02 || m250 > 1.15 {
		t.Errorf("250nm worst penalty = %v, paper shows ≈1.06", m250)
	}
	if m100 < 1.06 || m100 > 1.25 {
		t.Errorf("100nm worst penalty = %v, paper shows ≈1.12", m100)
	}
	if m100 <= m250 {
		t.Errorf("100nm penalty (%v) should exceed 250nm (%v)", m100, m250)
	}
	// Penalty is a ratio to the optimum, so never below 1.
	for _, pts := range [][]SweepPoint{p250, p100} {
		for _, p := range pts {
			if p.Penalty < 1-1e-9 {
				t.Errorf("penalty %v < 1 at l=%v", p.Penalty, p.L)
			}
		}
	}
}

func TestSweepFig4LCritShape(t *testing.T) {
	// Figure 4: at the RLC optimum, lcrit is positive, grows with l, stays
	// the same order of magnitude as small practical l, and the 100 nm
	// values sit below the 250 nm values.
	p250, err := Sweep(tech.Node250(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := Sweep(tech.Node100(), sweepLs(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p250 {
		if p250[i].LCrit <= 0 || p100[i].LCrit <= 0 {
			t.Fatalf("lcrit must be positive at l=%v", p250[i].L)
		}
		if p100[i].LCrit >= p250[i].LCrit {
			t.Errorf("100nm lcrit (%v) should be below 250nm (%v) at l=%v",
				p100[i].LCrit, p250[i].LCrit, p250[i].L)
		}
		if i > 0 && p250[i].LCrit <= p250[i-1].LCrit {
			t.Errorf("250nm lcrit not increasing at l=%v", p250[i].L)
		}
	}
	// Order-of-magnitude statement at the small-l end.
	if r := p250[0].LCrit / p250[0].L; r < 0.2 || r > 20 {
		t.Errorf("lcrit/l at small l = %v, want same order", r)
	}
}

func TestSweepRejectsBadNode(t *testing.T) {
	bad := tech.Node250()
	bad.Rs = -1
	if _, err := Sweep(bad, sweepLs(), 0.5); err == nil {
		t.Error("expected error for invalid node")
	}
}
