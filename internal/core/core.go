// Package core implements the paper's primary contribution: repeater
// insertion for distributed RLC interconnects by direct minimization of the
// delay per unit length τ/h over segment length h and repeater size k
// (Section 2.2). The primary path solves the stationarity system
// (g1, g2) = 0 of Eqs. (7)–(8) with Newton's method, using the analytic
// derivatives of the two-pole coefficients and poles with respect to h and
// k; a Nelder–Mead fallback on (log h, log k) handles the near-critically-
// damped region where the pole derivatives are singular, and the two paths
// cross-check each other.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"rlcint/internal/diag"
	"rlcint/internal/num"
	"rlcint/internal/pade"
	"rlcint/internal/repeater"
	"rlcint/internal/runctl"
	"rlcint/internal/tline"
)

// Problem describes one optimization instance.
type Problem struct {
	Device repeater.MinDevice
	Line   tline.Line // per-unit-length r, l, c (SI)
	F      float64    // delay threshold fraction; 0 means 0.5
	// Injector injects optimizer faults for testing (nil in production).
	Injector *diag.Injector
	// Report, when non-nil, records which optimizer ladder rungs ran
	// (Newton cold start, perturbed multi-starts, Nelder–Mead, polish).
	Report *diag.Report
	// Limits bound the optimization; MaxIters counts inner optimizer
	// iterations (Newton and simplex) across all ladder rungs. Enforced by
	// OptimizeCtx; Optimize honours them with a background context.
	Limits runctl.Limits

	// ctl carries the active run controller through the ladder; set by
	// OptimizeCtx.
	ctl *runctl.Controller
	// ws carries the optimizer workspace (scratch buffers + warm delay
	// hint); set by OptimizeSeeded. nil means allocate per call and solve
	// every delay cold.
	ws *Workspace
}

func (p Problem) threshold() float64 {
	if p.F == 0 {
		return 0.5
	}
	return p.F
}

// Validate rejects ill-posed problems; domain violations (including NaN/Inf
// inputs) match diag.ErrDomain.
func (p Problem) Validate() error {
	if err := p.Device.Validate(); err != nil {
		return err
	}
	if err := p.Line.Validate(); err != nil {
		return err
	}
	if f := p.threshold(); !(f > 0) || !(f < 1) {
		return diag.Domainf("core.Optimize", "threshold f=%g outside (0,1)", f)
	}
	return nil
}

// Method names the optimizer path that produced a result.
type Method string

const (
	MethodNewton     Method = "newton-g1g2" // the paper's Eq. (7)/(8) Newton solve
	MethodNelderMead Method = "nelder-mead" // direct τ/h minimization fallback
)

// Optimum is the solution of one instance.
type Optimum struct {
	H          float64    // optimal segment length, m
	K          float64    // optimal repeater size
	Tau        float64    // f×100% segment delay at the optimum, s
	PerUnit    float64    // Tau/H, s/m
	Model      pade.Model // two-pole model at the optimum
	Method     Method
	Iterations int // outer iterations of the reported method
}

// ErrOptimize wraps optimizer failures.
var ErrOptimize = errors.New("core: optimization failed")

// Eval builds the two-pole model and solves the delay for a given (h, k).
func (p Problem) Eval(h, k float64) (pade.Model, pade.DelayResult, error) {
	if err := p.ctl.Check("core.Eval"); err != nil {
		return pade.Model{}, pade.DelayResult{}, err
	}
	if err := p.Injector.At(diag.Site{Op: "core.eval"}); err != nil {
		return pade.Model{}, pade.DelayResult{}, err
	}
	if h <= 0 || k <= 0 || math.IsNaN(h) || math.IsNaN(k) {
		return pade.Model{}, pade.DelayResult{}, diag.Domainf("core.Eval", "requires positive h, k; got h=%g k=%g", h, k)
	}
	st := p.Device.Stage(p.Line, h, k)
	m, err := pade.FromStage(st)
	if err != nil {
		return pade.Model{}, pade.DelayResult{}, err
	}
	var d pade.DelayResult
	if p.ws != nil && p.ws.warm && p.ws.lastTau > 0 {
		d, err = m.DelaySeeded(p.ctl, p.threshold(), p.ws.lastTau)
	} else {
		d, err = m.DelayWith(p.ctl, p.threshold())
	}
	if err == nil && p.ws != nil {
		p.ws.lastTau = d.Tau
	}
	return m, d, err
}

// PerUnitDelay returns τ(h,k)/h, the optimization objective; +Inf outside
// the domain (used directly by the Nelder–Mead fallback).
func (p Problem) PerUnitDelay(h, k float64) float64 {
	_, d, err := p.Eval(h, k)
	if err != nil {
		return math.Inf(1)
	}
	return d.Tau / h
}

// coeffDerivs returns b1, b2 and their analytic partial derivatives with
// respect to h and k for the k-scaled repeater parametrization
// R_S = rs/k, C_P = cp·k, C_L = c0·k.
func (p Problem) coeffDerivs(h, k float64) (b1, b2, db1h, db1k, db2h, db2k float64) {
	r, l, c := p.Line.R, p.Line.L, p.Line.C
	rs, c0, cp := p.Device.Rs, p.Device.C0, p.Device.Cp

	b1 = rs*(cp+c0) + r*c*h*h/2 + rs*c*h/k + c0*r*h*k
	db1h = r*c*h + rs*c/k + c0*r*k
	db1k = -rs*c*h/(k*k) + c0*r*h

	rch2_6 := r * c * h * h / 6
	mid := rs*c*h/k + c0*r*h*k // R_S·c·h + C_L·r·h
	b2 = l*c*h*h/2 + r*r*c*c*h*h*h*h/24 +
		rs*(cp+c0)*r*c*h*h/2 +
		mid*rch2_6 +
		c0*k*l*h + rs*cp*c0*k*r*h
	db2h = l*c*h + r*r*c*c*h*h*h/6 +
		rs*(cp+c0)*r*c*h +
		(rs*c/k+c0*r*k)*rch2_6 + mid*(r*c*h/3) +
		c0*k*l + rs*cp*c0*k*r
	db2k = (-rs*c*h/(k*k)+c0*r*h)*rch2_6 + c0*l*h + rs*cp*c0*r*h
	return
}

// poleDerivs returns the poles s1, s2 and their derivatives with respect to
// h and k, in complex arithmetic so the underdamped case works transparently
// (the paper's expression below Eq. (8)). It errors inside the critical-
// damping band, where 1/√(b1²−4b2) is singular.
func (p Problem) poleDerivs(h, k float64) (s1, s2, ds1h, ds1k, ds2h, ds2k complex128, err error) {
	b1, b2, db1h, db1k, db2h, db2k := p.coeffDerivs(h, k)
	disc := b1*b1 - 4*b2
	if math.Abs(disc) < 1e-12*b1*b1 {
		err = fmt.Errorf("core: pole derivatives singular near critical damping (disc/b1²=%.2e)", disc/(b1*b1))
		return
	}
	sq := cmplx.Sqrt(complex(disc, 0))
	cb1, cb2 := complex(b1, 0), complex(b2, 0)
	s1 = (-cb1 + sq) / (2 * cb2)
	s2 = (-cb1 - sq) / (2 * cb2)
	d := func(db1, db2 float64, sign float64, s complex128) complex128 {
		cdb1, cdb2 := complex(db1, 0), complex(db2, 0)
		t := -cdb1 + complex(sign, 0)*(cb1*cdb1-2*cdb2)/sq
		return t/(2*cb2) - s*cdb2/cb2
	}
	ds1h = d(db1h, db2h, +1, s1)
	ds1k = d(db1k, db2k, +1, s1)
	ds2h = d(db1h, db2h, -1, s2)
	ds2k = d(db1k, db2k, -1, s2)
	return
}

// stationarity evaluates the paper's g1 and g2 (Eqs. (7) and (8)) at (h, k):
// the conditions ∂(τ/h)/∂h = 0 and ∂(τ/h)/∂k = 0 with the delay-equation
// constraint eliminated.
//
// Eq. (3) multiplied by (s2−s1) is real for real poles but purely imaginary
// for a conjugate pair (it has the form z − z̄), and the same holds for its
// parameter derivatives g1 and g2. The meaningful signed residual is
// therefore the real part in the overdamped regime and the imaginary part in
// the underdamped one; poleDerivs already excludes the critical band between
// them.
func (p Problem) stationarity(h, k float64) (g1, g2 float64, err error) {
	s1, s2, ds1h, ds1k, ds2h, ds2k, err := p.poleDerivs(h, k)
	if err != nil {
		return 0, 0, err
	}
	_, dres, err := p.Eval(h, k)
	if err != nil {
		return 0, 0, err
	}
	tau := complex(dres.Tau, 0)
	f := p.threshold()
	e1 := cmplx.Exp(s1 * tau)
	e2 := cmplx.Exp(s2 * tau)
	onemf := complex(1-f, 0)
	ch := complex(h, 0)

	cg1 := onemf*(ds2h-ds1h) - ds2h*e1 + ds1h*e2 -
		s2*tau*(ds1h+s1/ch)*e1 + s1*tau*(ds2h+s2/ch)*e2
	cg2 := onemf*(ds2k-ds1k) - ds2k*e1 - s2*tau*ds1k*e1 +
		ds1k*e2 + s1*tau*ds2k*e2
	if imag(s1) != 0 {
		return imag(cg1), imag(cg2), nil
	}
	return real(cg1), real(cg2), nil
}

// Optimize minimizes τ/h over (h, k). It runs the paper's Newton solve on
// (g1, g2) from the RC optimum, verifies the result, and falls back to (or
// cross-checks against) direct Nelder–Mead minimization; the better feasible
// point wins. Scale invariance is handled by normalizing h and k to their RC
// optima inside the solver.
func Optimize(p Problem) (Optimum, error) {
	return OptimizeCtx(context.Background(), p)
}

// OptimizeCtx is Optimize under run control: ctx cancellation and p.Limits
// are checked at every inner optimizer iteration and objective evaluation.
// A run-control stop is terminal — it aborts the whole ladder immediately
// instead of being retried as a convergence failure on the next rung.
// Panics anywhere in the ladder surface as diag.ErrPanic SolverErrors.
func OptimizeCtx(ctx context.Context, p Problem) (Optimum, error) {
	return OptimizeSeeded(ctx, p, Seed{}, nil)
}

// OptimizeWS is OptimizeCtx with caller-owned scratch state: repeated solves
// reusing one Workspace allocate (almost) nothing. Results are bit-identical
// to OptimizeCtx — the workspace only changes where intermediates live.
func OptimizeWS(ctx context.Context, p Problem, ws *Workspace) (Optimum, error) {
	return OptimizeSeeded(ctx, p, Seed{}, ws)
}

// Package-level read-only ladder constants, hoisted so each solve does not
// re-allocate them.
var (
	lowerHK        = []float64{1e-3, 1e-3}
	coldStart      = [2]float64{1, 1}
	nmStart        = [2]float64{0, 0}
	newtonRestarts = [4][2]float64{{1.25, 0.8}, {0.8, 1.25}, {1.6, 1.6}, {0.6, 0.6}}
)

// OptimizeSeeded is OptimizeCtx with warm-start continuation: when seed is
// valid (taken from a neighboring problem's converged Optimum via AsSeed), a
// leading ladder rung runs the stationarity Newton from the seeded point —
// with the Padé threshold solves seeded from the neighbor's delay — and, on
// clean convergence, skips the cold start, the multi-starts, and the
// Nelder–Mead cross-check entirely. If the warm rung diverges or is
// infeasible, or converges to a per-unit delay outside the ±50% continuation
// band around the seed's, the warm candidate and the warm delay hints are
// discarded and the full cold ladder runs unchanged, so the recovery
// semantics (and diag.Report rungs) of OptimizeCtx are preserved; the warm
// rung records as "warm-start" with fault-injection site Step = -2.
//
// Agreement contract: warm and cold land on the same stationary point to
// within the stationarity tolerance, so the optimized per-unit delay (the
// objective, quadratically flat at the optimum) agrees to ≤1e-12 relative;
// the arguments h, k (and τ, which scales with h) agree only to ~1e-6
// relative — the cold ladder's own ≤1e-7-normalized-residual looseness — and
// are not bit-identical.
//
// ws may be nil (allocate per call). seed may be the zero Seed (pure cold
// start, bit-identical to OptimizeCtx).
func OptimizeSeeded(ctx context.Context, p Problem, seed Seed, ws *Workspace) (opt Optimum, err error) {
	defer diag.RecoverTo(&err, "core.Optimize")
	if err := p.Validate(); err != nil {
		return Optimum{}, err
	}
	p.ctl = runctl.New(ctx, p.Limits)
	if ws != nil {
		p.ws = ws
		ws.warm = seed.Valid() && seed.Tau > 0
		ws.lastTau = seed.Tau
	}
	rc, err := repeater.RCOptimal(p.Device, tline.Line{R: p.Line.R, C: p.Line.C})
	if err != nil {
		return Optimum{}, err
	}

	var cands []cand
	if ws != nil {
		cands = ws.cands[:0]
		defer func() { ws.cands = cands }()
	}
	rep := p.Report

	// The paper's Newton on (g1, g2), variables normalized by the RC
	// optimum so the Jacobian is well-scaled. start indexes the ladder rung
	// for fault-injection sites.
	sysAt := func(start int) num.VecFunc {
		return func(x, out []float64) error {
			if err := p.Injector.At(diag.Site{Op: "core.stationarity", Step: start}); err != nil {
				return err
			}
			g1, g2, err := p.stationarity(rc.Denormalize(x[0], x[1]))
			if err != nil {
				return err
			}
			// Scale the residuals: g has units of ds/dh ~ 1/(s·m); normalize by
			// characteristic magnitudes so Tol is meaningful.
			out[0] = g1 * rc.H * rc.Tau
			out[1] = g2 * rc.K * rc.Tau
			return nil
		}
	}
	// tryNewton runs one Newton start and admits its iterate as a candidate
	// when feasible — even when the line search stalled on the finite-
	// difference noise floor, where the final iterate is usually at the
	// optimum; the objective comparison decides. It reports whether a
	// candidate was admitted.
	tryNewton := func(start int, rung string, x0 []float64, opts num.NewtonNDOptions) (bool, error) {
		nres, nerr := num.NewtonND(sysAt(start), x0, opts)
		if len(nres.X) == 2 && nres.X[0] > 0 && nres.X[1] > 0 {
			h, k := rc.Denormalize(nres.X[0], nres.X[1])
			if pu := p.PerUnitDelay(h, k); !math.IsInf(pu, 1) {
				cands = append(cands, cand{h, k, pu, MethodNewton, nres.Iterations})
				if rep != nil {
					rep.Record("opt-newton", rung, diag.OutcomeOK, fmt.Sprintf("h=%g k=%g", h, k), nerr)
				}
				return true, nerr
			}
		}
		rep.Record("opt-newton", rung, diag.OutcomeFailed, "", nerr)
		return false, nerr
	}
	coldOpts := num.NewtonNDOptions{
		Tol:     1e-7,
		MaxIter: 60,
		Damping: true,
		Lower:   lowerHK,
		Ctl:     p.ctl,
	}
	if ws != nil {
		coldOpts.WS = &ws.newton
	}

	// Rung 0: warm start from the neighboring solution. On clean convergence
	// to a per-unit delay plausibly continuous with the neighbor's, the
	// remaining rungs (including the Nelder–Mead cross-check) are skipped —
	// this is the continuation fast path of batched sweeps. Any doubt
	// (divergence, line-search stall, or a per-unit delay jumping outside
	// the continuation band, which would indicate convergence to a
	// different stationary point) discards the warm candidate and the warm
	// delay hints, so the fallback runs the cold ladder exactly.
	var nerr, nmErr error
	warmed := false
	if seed.Valid() {
		var x0 [2]float64
		x0[0], x0[1] = rc.Normalize(seed.H, seed.K)
		ok, werr := tryNewton(-2, "warm-start", x0[:], coldOpts)
		if runctl.IsStop(werr) {
			return Optimum{}, werr
		}
		warmed = ok && werr == nil
		if warmed && seed.Tau > 0 {
			puSeed := seed.Tau / seed.H
			pu := cands[len(cands)-1].pu
			if !(pu < puSeed*1.5 && pu > puSeed/1.5) {
				warmed = false
			}
		}
		if !warmed {
			cands = cands[:0]
			if ws != nil {
				ws.warm = false
				ws.lastTau = 0
			}
		}
		nerr = werr
	}

	if !warmed {
		// Rung 1: Newton cold start from the RC optimum.
		var coldOK bool
		coldOK, nerr = tryNewton(0, "cold-start", coldStart[:], coldOpts)
		if runctl.IsStop(nerr) {
			return Optimum{}, nerr
		}

		// Rung 2: perturbed multi-starts — retry the paper's Newton from points
		// scattered around the RC optimum before conceding to the derivative-
		// free fallback. Only runs when the cold start yielded no candidate.
		if !coldOK {
			for i, x0 := range newtonRestarts {
				ok, err := tryNewton(i+1, fmt.Sprintf("multi-start(%g,%g)", x0[0], x0[1]), x0[:], coldOpts)
				if runctl.IsStop(err) {
					return Optimum{}, err
				}
				if ok {
					nerr = err
					break
				}
			}
		}

		// Rung 3: direct Nelder–Mead minimization on (log h, log k); immune to
		// the critical-damping singularity and to saddle points of (g1, g2).
		obj := func(x []float64) float64 {
			return p.PerUnitDelay(rc.H*math.Exp(x[0]), rc.K*math.Exp(x[1]))
		}
		nmOpts := num.NelderMeadOptions{
			Tol: 1e-13, MaxIter: 2000, InitScale: 0.25, MaxRestart: 3, Ctl: p.ctl,
		}
		if ws != nil {
			nmOpts.WS = &ws.nm
		}
		var xnm []float64
		xnm, _, nmErr = num.NelderMead(obj, nmStart[:], nmOpts)
		if runctl.IsStop(nmErr) {
			return Optimum{}, nmErr
		}
		if nmErr == nil {
			h, k := rc.H*math.Exp(xnm[0]), rc.K*math.Exp(xnm[1])
			if pu := p.PerUnitDelay(h, k); !math.IsInf(pu, 1) {
				cands = append(cands, cand{h, k, pu, MethodNelderMead, 0})
				if rep != nil {
					rep.Record("opt-nelder-mead", "direct", diag.OutcomeOK, fmt.Sprintf("h=%g k=%g", h, k), nil)
				}
			} else {
				rep.Record("opt-nelder-mead", "direct", diag.OutcomeFailed, "infeasible minimum", nil)
			}
			// Polish: the paper's Newton started from the direct minimum —
			// restores quadratic convergence when the cold start wandered into
			// a flat region of (g1, g2).
			polishOpts := num.NewtonNDOptions{
				Tol: 1e-9, MaxIter: 20, Damping: true, Lower: lowerHK, Ctl: p.ctl,
			}
			if ws != nil {
				polishOpts.WS = &ws.newton
			}
			var px0 [2]float64
			px0[0], px0[1] = rc.Normalize(h, k)
			pres, perr := num.NewtonND(sysAt(-1), px0[:], polishOpts)
			if runctl.IsStop(perr) {
				return Optimum{}, perr
			}
			if perr == nil && len(pres.X) == 2 {
				ph, pk := rc.Denormalize(pres.X[0], pres.X[1])
				if pu := p.PerUnitDelay(ph, pk); !math.IsInf(pu, 1) {
					cands = append(cands, cand{ph, pk, pu, MethodNewton, pres.Iterations})
					if rep != nil {
						rep.Record("opt-newton", "polish", diag.OutcomeOK, fmt.Sprintf("h=%g k=%g", ph, pk), nil)
					}
				}
			} else if perr != nil {
				rep.Record("opt-newton", "polish", diag.OutcomeFailed, "", perr)
			}
		} else {
			rep.Record("opt-nelder-mead", "direct", diag.OutcomeFailed, "", nmErr)
		}
	}
	if len(cands) == 0 {
		de := diag.New(diag.ErrNonConvergence, "core.Optimize")
		de.Detail = "all optimizer rungs failed"
		de.Err = fmt.Errorf("%w: newton: %v; nelder-mead: %v", ErrOptimize, nerr, nmErr)
		return Optimum{}, de
	}
	best := cands[0]
	for _, c := range cands[1:] {
		// Prefer the Newton (paper) path unless it is measurably worse.
		if c.pu < best.pu*(1-1e-9) {
			best = c
		}
	}
	m, d, err := p.Eval(best.h, best.k)
	if err != nil {
		return Optimum{}, fmt.Errorf("%w: final evaluation: %v", ErrOptimize, err)
	}
	return Optimum{
		H: best.h, K: best.k,
		Tau: d.Tau, PerUnit: d.Tau / best.h,
		Model: m, Method: best.method, Iterations: best.iters,
	}, nil
}

// OptimizeRC returns the classical Elmore optimum for the problem's line
// (inductance ignored), for convenience in ratio studies.
func OptimizeRC(p Problem) (repeater.RCOptimum, error) {
	return repeater.RCOptimal(p.Device, tline.Line{R: p.Line.R, C: p.Line.C})
}
