package core

import (
	"math"
	"testing"

	"rlcint/internal/tech"
)

func TestTradeoffWeightZeroMatchesOptimize(t *testing.T) {
	p := problem(tech.Node100(), 2)
	base, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	to, err := OptimizeTradeoff(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(to.PerUnit-base.PerUnit) / base.PerUnit; rel > 1e-4 {
		t.Errorf("w=0 per-unit delay %v vs %v (rel %v)", to.PerUnit, base.PerUnit, rel)
	}
}

func TestTradeoffSavesEnergyForDelay(t *testing.T) {
	p := problem(tech.Node100(), 2)
	w0, err := OptimizeTradeoff(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := OptimizeTradeoff(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1.EnergyPerLen >= w0.EnergyPerLen {
		t.Errorf("w=1 energy %v not below w=0 energy %v", w1.EnergyPerLen, w0.EnergyPerLen)
	}
	if w1.PerUnit <= w0.PerUnit {
		t.Errorf("w=1 delay %v should be worse than w=0 delay %v", w1.PerUnit, w0.PerUnit)
	}
	// Energy saving mechanism: fewer/smaller repeaters per length.
	if w1.K/w1.H >= w0.K/w0.H {
		t.Errorf("repeater capacitance per length did not drop: %v vs %v", w1.K/w1.H, w0.K/w0.H)
	}
}

func TestTradeoffValidation(t *testing.T) {
	p := problem(tech.Node100(), 2)
	if _, err := OptimizeTradeoff(p, -1); err == nil {
		t.Error("negative weight must fail")
	}
	bad := p
	bad.F = 2
	if _, err := OptimizeTradeoff(bad, 0); err == nil {
		t.Error("invalid problem must fail")
	}
}

func TestEnergyPerLengthComposition(t *testing.T) {
	p := problem(tech.Node100(), 1)
	h, k := 0.011, 500.0
	want := p.Line.C + (p.Device.C0+p.Device.Cp)*k/h
	if got := p.EnergyPerLength(h, k); got != want {
		t.Errorf("energy %v, want %v", got, want)
	}
}

func TestOptimizeHigherOrderAblation(t *testing.T) {
	// The paper's approximation #1 ablation. Under the richer order-4 delay
	// model the optimum shifts toward longer segments and smaller repeaters
	// (the model sees the wave-propagation benefit the two-pole lump
	// cannot), BUT the τ/h landscape is flat: the two-pole design is within
	// a few percent of the order-4 optimum under the order-4 metric — which
	// is exactly why the paper's two-pole optimization is adequate.
	p := problem(tech.Node100(), 2)
	two, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := OptimizeHigherOrder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Order < 2 {
		t.Fatalf("no usable order: %+v", hi)
	}
	if hi.H <= two.H {
		t.Errorf("order-%d h=%v should exceed two-pole h=%v", hi.Order, hi.H, two.H)
	}
	if hi.K >= two.K {
		t.Errorf("order-%d k=%v should be below two-pole k=%v", hi.Order, hi.K, two.K)
	}
	// The order-4 optimum must beat the two-pole point under its own
	// metric, but only slightly (flat landscape).
	puTwoUnderHi := HigherOrderPerUnit(p, two.H, two.K, 4)
	if math.IsInf(puTwoUnderHi, 1) {
		t.Fatal("no stable higher-order model at the two-pole optimum")
	}
	if hi.PerUnit > puTwoUnderHi*(1+1e-6) {
		t.Errorf("order-4 optimum (%v) worse than two-pole point (%v) under its own metric",
			hi.PerUnit, puTwoUnderHi)
	}
	if gain := puTwoUnderHi/hi.PerUnit - 1; gain > 0.10 {
		t.Errorf("two-pole design leaves %.1f%% on the table — landscape not flat, approximation #1 questionable", 100*gain)
	}
}

func TestOptimizeHigherOrderValidation(t *testing.T) {
	p := problem(tech.Node100(), 2)
	if _, err := OptimizeHigherOrder(p, 1); err == nil {
		t.Error("order 1 must fail")
	}
	if _, err := OptimizeHigherOrder(p, 11); err == nil {
		t.Error("order 11 must fail")
	}
}
