package core

import (
	"testing"

	"rlcint/internal/num"
	"rlcint/internal/tech"
)

func TestDelayVsLengthMonotone(t *testing.T) {
	p := problem(tech.Node100(), 2)
	hs := num.Linspace(5e-3, 40e-3, 8)
	pts, err := DelayVsLength(p, 528, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Tau <= pts[i-1].Tau {
			t.Errorf("delay not increasing with length at h=%v", pts[i].H)
		}
	}
}

func TestDelayGrowthExponentApproachesLCLimit(t *testing.T) {
	// The paper's linearity claim: the growth exponent falls toward 1 as l
	// increases (and sits near 2 in the long RC limit).
	k := 528.0
	h := 25e-3 // long segment: wire-dominated
	var prev float64 = 3
	for _, l := range []float64{0.02, 0.5, 2, 4.9} {
		p := problem(tech.Node100(), l)
		e, err := DelayGrowthExponent(p, h, k)
		if err != nil {
			t.Fatalf("l=%v: %v", l, err)
		}
		if e >= prev {
			t.Errorf("l=%v: exponent %v did not decrease (prev %v)", l, e, prev)
		}
		prev = e
	}
	// RC-ish limit: exponent approaches 2 for a long line with tiny l.
	p := problem(tech.Node100(), 0.001)
	e, err := DelayGrowthExponent(p, 60e-3, k)
	if err != nil {
		t.Fatal(err)
	}
	if e < 1.6 || e > 2.2 {
		t.Errorf("long-RC exponent %v, want ≈2", e)
	}
	// Strongly inductive: approaching linear.
	p = problem(tech.Node100(), 4.9)
	e, err = DelayGrowthExponent(p, 25e-3, k)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1.6 {
		t.Errorf("high-l exponent %v, want approaching 1", e)
	}
}

func TestDelayVsLengthValidation(t *testing.T) {
	p := problem(tech.Node100(), 1)
	if _, err := DelayVsLength(p, -1, []float64{0.01}); err == nil {
		t.Error("negative k must fail")
	}
	bad := p
	bad.F = 9
	if _, err := DelayVsLength(bad, 100, []float64{0.01}); err == nil {
		t.Error("invalid problem must fail")
	}
	if _, err := DelayGrowthExponent(bad, 0.01, 100); err == nil {
		t.Error("invalid problem must fail")
	}
}
