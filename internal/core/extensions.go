package core

import (
	"fmt"
	"math"

	"rlcint/internal/awe"
	"rlcint/internal/num"
	"rlcint/internal/repeater"
	"rlcint/internal/tline"
)

// EnergyPerLength returns the switching energy per unit length of a buffered
// line at sizing (h, k), normalized to VDD² (J/m/V²): the wire capacitance
// plus the amortized repeater input and parasitic capacitance.
func (p Problem) EnergyPerLength(h, k float64) float64 {
	return p.Line.C + (p.Device.C0+p.Device.Cp)*k/h
}

// TradeoffOptimum extends Optimum with the energy term of the objective.
type TradeoffOptimum struct {
	Optimum
	EnergyPerLen float64 // F/m (multiply by VDD² for J/m per transition)
	Weight       float64
}

// OptimizeTradeoff minimizes (τ/h)·(E/h-normalized energy)^w: w = 0
// reproduces the paper's pure delay optimization; growing w trades delay for
// switching energy, shrinking the repeaters and stretching the segments.
// This is the natural power-aware extension of the paper's methodology
// (its Section 1 notes glitch power as an inductance casualty; this knob
// addresses the repeater-insertion power overhead).
func OptimizeTradeoff(p Problem, w float64) (TradeoffOptimum, error) {
	if err := p.Validate(); err != nil {
		return TradeoffOptimum{}, err
	}
	if w < 0 {
		return TradeoffOptimum{}, fmt.Errorf("core: negative tradeoff weight %g", w)
	}
	rc, err := repeater.RCOptimal(p.Device, tline.Line{R: p.Line.R, C: p.Line.C})
	if err != nil {
		return TradeoffOptimum{}, err
	}
	obj := func(x []float64) float64 {
		h, k := rc.H*math.Exp(x[0]), rc.K*math.Exp(x[1])
		pu := p.PerUnitDelay(h, k)
		if math.IsInf(pu, 1) {
			return pu
		}
		return pu * math.Pow(p.EnergyPerLength(h, k), w)
	}
	x, _, err := num.NelderMead(obj, []float64{0, 0}, num.NelderMeadOptions{
		Tol: 1e-13, MaxIter: 2500, InitScale: 0.3, MaxRestart: 3,
	})
	if err != nil {
		return TradeoffOptimum{}, fmt.Errorf("%w: tradeoff: %v", ErrOptimize, err)
	}
	h, k := rc.H*math.Exp(x[0]), rc.K*math.Exp(x[1])
	m, d, err := p.Eval(h, k)
	if err != nil {
		return TradeoffOptimum{}, err
	}
	return TradeoffOptimum{
		Optimum: Optimum{
			H: h, K: k, Tau: d.Tau, PerUnit: d.Tau / h,
			Model: m, Method: MethodNelderMead,
		},
		EnergyPerLen: p.EnergyPerLength(h, k),
		Weight:       w,
	}, nil
}

// HigherOrderOptimum is the result of the order-q ablation.
type HigherOrderOptimum struct {
	H, K    float64
	PerUnit float64 // τ/h under the order-q delay model
	Order   int     // the order actually used (after stability fallback)
}

// OptimizeHigherOrder repeats the paper's optimization with an order-q AWE
// delay model in place of the two-pole model — the ablation for the paper's
// approximation #1 (Section 2.2). Unstable fits at a trial point fall back
// to lower orders; the reported Order is the one used at the optimum.
func OptimizeHigherOrder(p Problem, q int) (HigherOrderOptimum, error) {
	if err := p.Validate(); err != nil {
		return HigherOrderOptimum{}, err
	}
	if q < 2 || q > 10 {
		return HigherOrderOptimum{}, fmt.Errorf("core: order %d outside [2,10]", q)
	}
	rc, err := repeater.RCOptimal(p.Device, tline.Line{R: p.Line.R, C: p.Line.C})
	if err != nil {
		return HigherOrderOptimum{}, err
	}
	obj := func(x []float64) float64 {
		h, k := rc.H*math.Exp(x[0]), rc.K*math.Exp(x[1])
		if h <= 0 || k <= 0 {
			return math.Inf(1)
		}
		d, _ := higherOrderDelay(p, h, k, q)
		return d / h
	}
	x, _, err := num.NelderMead(obj, []float64{0, 0}, num.NelderMeadOptions{
		Tol: 1e-11, MaxIter: 900, InitScale: 0.3, MaxRestart: 2,
	})
	if err != nil {
		return HigherOrderOptimum{}, fmt.Errorf("%w: order-%d: %v", ErrOptimize, q, err)
	}
	h, k := rc.H*math.Exp(x[0]), rc.K*math.Exp(x[1])
	d, used := higherOrderDelay(p, h, k, q)
	if math.IsInf(d, 1) {
		return HigherOrderOptimum{}, fmt.Errorf("%w: no stable order-%d model at the optimum", ErrOptimize, q)
	}
	return HigherOrderOptimum{H: h, K: k, PerUnit: d / h, Order: used}, nil
}

// higherOrderDelay evaluates the threshold delay at (h, k) with the highest
// stable AWE order not exceeding q, returning the delay and the order used
// (+Inf, 0 when no order works).
func higherOrderDelay(p Problem, h, k float64, q int) (float64, int) {
	st := p.Device.Stage(p.Line, h, k)
	f := p.threshold()
	for order := q; order >= 2; order-- {
		fit, err := awe.FromStage(st, order)
		if err != nil || !fit.Stable() {
			continue
		}
		if d, err := fit.Delay(f); err == nil {
			return d, order
		}
	}
	return math.Inf(1), 0
}

// HigherOrderPerUnit evaluates τ/h at (h, k) under the order-q delay model;
// exposed for ablation comparisons against the two-pole optimum.
func HigherOrderPerUnit(p Problem, h, k float64, q int) float64 {
	d, _ := higherOrderDelay(p, h, k, q)
	return d / h
}
