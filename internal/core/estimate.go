package core

import (
	"math"

	"rlcint/internal/baseline"
	"rlcint/internal/diag"
	"rlcint/internal/pade"
	"rlcint/internal/tline"
)

// MethodEstimate marks results produced by the closed-form estimate facade
// rather than the full Padé/Newton machinery.
const MethodEstimate Method = "closed-form-estimate"

// EstimateOptimum returns a closed-form approximation of Optimize's answer:
// the Ismail–Friedman inductance-aware repeater sizing (which reduces to the
// classical Elmore/RC optimum at l = 0) evaluated with a threshold-scaled
// Elmore delay. It involves no iteration and cannot fail to converge, which
// makes it the degraded-mode answer the serving layer falls back to when the
// exact solve fails, times out, or is short-circuited by an open breaker —
// a bounded-accuracy estimate instead of no answer at all.
func EstimateOptimum(p Problem) (Optimum, error) {
	if err := p.Validate(); err != nil {
		return Optimum{}, err
	}
	ifo, err := baseline.IFOptimal(p.Device, p.Line)
	if err != nil {
		return Optimum{}, err
	}
	st := p.Device.Stage(p.Line, ifo.H, ifo.K)
	tau, err := EstimateDelay(st, p.F)
	if err != nil {
		return Optimum{}, err
	}
	// The two-pole coefficients at the estimate are themselves closed-form;
	// attach them when the stage admits a model so degraded responses carry
	// the same shape as exact ones. A model failure degrades the payload,
	// not the answer.
	var m pade.Model
	if em, merr := pade.FromStage(st); merr == nil {
		m = em
	}
	return Optimum{
		H: ifo.H, K: ifo.K,
		Tau: tau, PerUnit: tau / ifo.H,
		Model: m, Method: MethodEstimate,
	}, nil
}

// EstimateDelay returns the threshold-scaled Elmore estimate of a stage's
// f×100% delay: −ln(1−f)·t_Elmore, exact for a single pole and equal to the
// classical 0.69·RC rule at f = 0.5. f = 0 means the paper's 50%.
func EstimateDelay(st tline.Stage, f float64) (float64, error) {
	if f == 0 {
		f = 0.5
	}
	if !(f > 0) || !(f < 1) {
		return 0, diag.Domainf("core.EstimateDelay", "threshold f=%g outside (0,1)", f)
	}
	return -math.Log(1-f) * st.ElmoreSegment(), nil
}

// EstimatePlan is the closed-form counterpart of PlanLine: the continuous
// estimate's segment length rounded to an integer stage count, with the
// per-stage delay re-evaluated at the realized h. Like EstimateOptimum it
// never iterates and never fails on a well-posed problem.
func EstimatePlan(p Problem, L float64) (LinePlan, error) {
	if L <= 0 || math.IsNaN(L) || math.IsInf(L, 0) {
		return LinePlan{}, diag.Domainf("core.EstimatePlan", "requires positive finite length, got %g", L)
	}
	opt, err := EstimateOptimum(p)
	if err != nil {
		return LinePlan{}, err
	}
	n := int(math.Round(L / opt.H))
	if n < 1 {
		n = 1
	}
	h := L / float64(n)
	tau, err := EstimateDelay(p.Device.Stage(p.Line, h, opt.K), p.F)
	if err != nil {
		return LinePlan{}, err
	}
	return LinePlan{
		Length: L, Stages: n,
		H: h, K: opt.K,
		StageTau: tau, Total: float64(n) * tau,
		Continuous: opt,
	}, nil
}
