package core

import (
	"errors"
	"math"
	"testing"

	"rlcint/internal/diag"
	"rlcint/internal/repeater"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// testProblem is a well-conditioned instance (the 100 nm node at 2 nH/mm)
// whose unfaulted solve lands on the Newton path.
func testProblem() Problem {
	n := tech.Node100()
	return Problem{
		Device: repeater.FromTech(n),
		Line:   tline.Line{R: n.R, L: 2 * tech.NHPerMM, C: n.C},
		F:      0.5,
	}
}

func TestOptimizeMultiStartRescuesColdStart(t *testing.T) {
	// Faulting only the cold start (start index 0) must push the optimizer to
	// a perturbed multi-start, still on the Newton path.
	want, err := Optimize(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	p := testProblem()
	p.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "core.stationarity" && s.Step == 0 {
			return errors.New("injected cold-start failure")
		}
		return nil
	}}
	rep := &diag.Report{}
	p.Report = rep
	opt, err := Optimize(p)
	if err != nil {
		t.Fatalf("Optimize with cold start faulted: %v\n%s", err, rep)
	}
	if opt.Method != MethodNewton {
		t.Errorf("Method = %s, want %s (multi-start rescue)", opt.Method, MethodNewton)
	}
	if math.Abs(opt.H-want.H) > 1e-5*want.H || math.Abs(opt.K-want.K) > 1e-5*want.K {
		t.Errorf("optimum (%g, %g) deviates from unfaulted (%g, %g)", opt.H, opt.K, want.H, want.K)
	}
	var coldFailed, multiOK bool
	for _, a := range rep.Attempts {
		if a.Ladder != "opt-newton" {
			continue
		}
		if a.Rung == "cold-start" && a.Outcome == diag.OutcomeFailed {
			coldFailed = true
		}
		if len(a.Rung) >= 11 && a.Rung[:11] == "multi-start" && a.Outcome == diag.OutcomeOK {
			multiOK = true
		}
	}
	if !coldFailed || !multiOK {
		t.Errorf("report missing cold-start failure or multi-start success:\n%s", rep)
	}
}

func TestOptimizeNewtonStallReachesNelderMead(t *testing.T) {
	// Faulting every stationarity evaluation (all Newton starts and the
	// polish) must still produce an optimum via the Nelder–Mead rung.
	p := testProblem()
	p.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "core.stationarity" {
			return errors.New("injected Newton stall")
		}
		return nil
	}}
	rep := &diag.Report{}
	p.Report = rep
	opt, err := Optimize(p)
	if err != nil {
		t.Fatalf("Optimize with Newton disabled: %v\n%s", err, rep)
	}
	if opt.Method != MethodNelderMead {
		t.Errorf("Method = %s, want %s", opt.Method, MethodNelderMead)
	}
	// The direct minimum must agree with the unfaulted answer to optimization
	// accuracy.
	want, err := Optimize(testProblem())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt.PerUnit-want.PerUnit) > 1e-6*want.PerUnit {
		t.Errorf("per-unit delay %g deviates from unfaulted %g", opt.PerUnit, want.PerUnit)
	}
	if last, ok := rep.Last("opt-nelder-mead"); !ok || last.Outcome != diag.OutcomeOK {
		t.Errorf("nelder-mead rung not recorded as OK:\n%s", rep)
	}
	if n := rep.Tried("opt-newton"); n < 5 {
		t.Errorf("only %d opt-newton attempts recorded, want cold start + 4 multi-starts\n%s", n, rep)
	}
}

func TestOptimizeTerminalFailureIsTyped(t *testing.T) {
	// Faulting both the stationarity system and the objective evaluation
	// leaves no rung standing: the terminal error must match both the legacy
	// ErrOptimize sentinel and the diag taxonomy.
	p := testProblem()
	p.Injector = &diag.Injector{Fault: func(s diag.Site) error {
		if s.Op == "core.stationarity" || s.Op == "core.eval" {
			return errors.New("injected total failure")
		}
		return nil
	}}
	rep := &diag.Report{}
	p.Report = rep
	_, err := Optimize(p)
	if err == nil {
		t.Fatal("Optimize succeeded with every rung faulted")
	}
	if !errors.Is(err, ErrOptimize) {
		t.Errorf("error %v does not match core.ErrOptimize", err)
	}
	if !errors.Is(err, diag.ErrNonConvergence) {
		t.Errorf("error %v does not match diag.ErrNonConvergence", err)
	}
	var de *diag.Error
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not a *diag.Error", err)
	}
	if de.Op != "core.Optimize" {
		t.Errorf("Op = %q, want core.Optimize", de.Op)
	}
	if last, ok := rep.Last("opt-nelder-mead"); !ok || last.Outcome != diag.OutcomeFailed {
		t.Errorf("nelder-mead rung not recorded as failed:\n%s", rep)
	}
}

func TestOptimizeRejectsNaNInputs(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		mod  func(*Problem)
	}{
		{"NaN inductance", func(p *Problem) { p.Line.L = nan }},
		{"NaN resistance", func(p *Problem) { p.Line.R = nan }},
		{"NaN device Rs", func(p *Problem) { p.Device.Rs = nan }},
		{"NaN threshold", func(p *Problem) { p.F = nan }},
		{"Inf threshold", func(p *Problem) { p.F = math.Inf(1) }},
		{"threshold at 1", func(p *Problem) { p.F = 1 }},
		{"negative threshold", func(p *Problem) { p.F = -0.5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := testProblem()
			c.mod(&p)
			if _, err := Optimize(p); !errors.Is(err, diag.ErrDomain) {
				t.Errorf("Optimize = %v, want ErrDomain match", err)
			}
		})
	}
}
