package rlcint

import (
	"context"

	"rlcint/internal/power"
)

// This file exports the power-aware optimization subsystem: per-stage power
// models (dynamic + short-circuit + leakage), the delay/power Pareto-front
// tracer, the power-budgeted optimizer, and the mixed-scheme power planner.

// PowerParams are the workload inputs of the power model: switching activity
// factor α ∈ (0, 1] and clock frequency (Hz).
type PowerParams = power.Params

// PowerBreakdown is the power of one repeater stage split into dynamic,
// short-circuit, and leakage terms (watts).
type PowerBreakdown = power.Breakdown

// PowerModel estimates per-stage power for a technology's buffered line.
// Build with NewPowerModel.
type PowerModel = power.Model

// NewPowerModel builds a power estimator for the technology's top-metal line
// with per-unit-length inductance l (H/m) under the given workload. The
// technology must carry power parameters (Vt, Ioff); the paper's tabulated
// nodes and InterpolateTech results do.
func NewPowerModel(t Technology, l float64, prm PowerParams) (PowerModel, error) {
	return power.New(t, l, prm)
}

// StagePower estimates the power of one (h, k) repeater stage.
func StagePower(m PowerModel, h, k float64) (PowerBreakdown, error) {
	return m.Stage(h, k)
}

// ParetoPoint is one point of the delay/power Pareto front.
type ParetoPoint = power.FrontPoint

// ParetoOptions configure the front tracer (point count, maximum weight,
// worker pool, warm-start continuation). The zero value is the default
// 17-point warm-start trace.
type ParetoOptions = power.FrontOptions

// ParetoFront traces the delay/power Pareto front of the model's buffered
// line at delay threshold f, from the delay-optimal end toward the
// power-lean end. Deterministic for fixed options regardless of worker
// count.
func ParetoFront(ctx context.Context, m PowerModel, f float64, opts ParetoOptions) ([]ParetoPoint, error) {
	return power.ParetoFront(ctx, m, f, opts)
}

// OptimizePowerBudget minimizes the per-unit delay subject to a per-unit
// power ceiling (W/m) — the constrained counterpart of a ParetoFront point.
func OptimizePowerBudget(ctx context.Context, m PowerModel, f, budget float64, lim RunLimits) (ParetoPoint, error) {
	return power.OptimizePowerBudget(ctx, m, f, budget, lim)
}

// PowerPlanOptions configure the mixed-scheme power planner (delay penalty
// budget, front trace options).
type PowerPlanOptions = power.PlanOptions

// PowerPlan is a power-aware realizable repeater plan: at most two repeater
// schemes drawn from the Pareto front, split along the net to minimize total
// power under a bounded delay penalty.
type PowerPlan = power.Plan

// PlanPower builds a power-minimal repeater plan for a net of total length L
// (meters) whose end-to-end delay stays within opts.MaxPenalty (default 5%)
// of the delay-optimal plan — the RIP mixed-scheme tradeoff.
func PlanPower(t Technology, l, f, L float64, prm PowerParams, opts PowerPlanOptions) (PowerPlan, error) {
	return PlanPowerCtx(context.Background(), t, l, f, L, prm, opts)
}

// PlanPowerCtx is PlanPower under run control: cancellation and the limits
// in opts.Front.Limits are checked throughout the front trace and the split
// search.
func PlanPowerCtx(ctx context.Context, t Technology, l, f, L float64, prm PowerParams, opts PowerPlanOptions) (PowerPlan, error) {
	m, err := power.New(t, l, prm)
	if err != nil {
		return PowerPlan{}, err
	}
	return power.PlanPower(ctx, m, f, L, opts)
}
