package rlcint_test

import (
	"fmt"

	"rlcint"
)

// ExampleLCrit shows the paper's Eq. (4): the line inductance that would
// make an RC-optimally-sized 100 nm stage critically damped. Practical
// inductances (0.1–5 nH/mm) far exceed it, which is why such stages ring.
func ExampleLCrit() {
	st := rlcint.StageOf(rlcint.Tech100(), 0, 11.1*rlcint.MM, 528)
	fmt.Printf("l_crit = %.3f nH/mm\n", rlcint.LCrit(st)/rlcint.NHPerMM)
	// Output:
	// l_crit = 0.044 nH/mm
}

// ExamplePlanLine turns the continuous optimum into a buildable plan for a
// 45 mm net.
func ExamplePlanLine() {
	plan, err := rlcint.PlanLine(rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5, 45*rlcint.MM)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d stages of %.1f mm, total %.0f ps\n",
		plan.Stages, plan.H/rlcint.MM, plan.Total/rlcint.PS)
	// Output:
	// 3 stages of 15.0 mm, total 727 ps
}

// ExampleSweep reproduces one point of the paper's Figure 7.
func ExampleSweep() {
	pts, err := rlcint.Sweep(rlcint.Tech250(), []float64{4.9 * rlcint.NHPerMM}, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("250 nm delay ratio at 4.9 nH/mm: %.2f (paper: ≈2)\n", pts[0].DelayRatio)
	// Output:
	// 250 nm delay ratio at 4.9 nH/mm: 1.99 (paper: ≈2)
}

// ExampleCheckOxide runs the Section 3.3.2 oxide screen for a measured
// overshoot.
func ExampleCheckOxide() {
	rep, err := rlcint.CheckOxide(rlcint.Tech100(), 0.7)
	if err != nil {
		panic(err)
	}
	fmt.Printf("field %.1f MV/cm, critical: %v\n", rep.Field/1e8, rep.Critical)
	// Output:
	// field 7.9 MV/cm, critical: true
}
