package rlcint

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeDelayRamp(t *testing.T) {
	st := StageOf(Tech100(), 2*NHPerMM, 11.1*MM, 528)
	step, err := Delay(st, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ramp, err := DelayRamp(st, 0.5, 50*PS)
	if err != nil {
		t.Fatal(err)
	}
	if ramp <= 0 {
		t.Fatalf("ramp delay %v", ramp)
	}
	// A finite rise time changes the propagation delay only moderately.
	if r := ramp / step; r < 0.5 || r > 2 {
		t.Errorf("ramp/step delay ratio %v implausible", r)
	}
	if _, err := DelayRamp(st, 0.5, -1); err == nil {
		t.Error("negative rise time must fail")
	}
}

func TestFacadeTradeoffAndHigherOrder(t *testing.T) {
	to, err := OptimizeTradeoff(Tech100(), 2*NHPerMM, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Optimize(Tech100(), 2*NHPerMM, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if to.K >= base.K {
		t.Errorf("energy-aware k %v should be below delay-only k %v", to.K, base.K)
	}
	hi, err := OptimizeHigherOrder(Tech100(), 2*NHPerMM, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Order < 2 || hi.PerUnit <= 0 {
		t.Errorf("higher-order result implausible: %+v", hi)
	}
}

func TestFacadeDelayGrowthExponent(t *testing.T) {
	lo, err := DelayGrowthExponent(Tech100(), 0.01*NHPerMM, 40*MM, 528)
	if err != nil {
		t.Fatal(err)
	}
	hiE, err := DelayGrowthExponent(Tech100(), 4.9*NHPerMM, 25*MM, 528)
	if err != nil {
		t.Fatal(err)
	}
	if hiE >= lo {
		t.Errorf("exponent should fall with l: %v vs %v", hiE, lo)
	}
}

func TestFacadeSelfHeating(t *testing.T) {
	rep, err := SelfHeating(Tech100(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Critical {
		t.Error("paper-scale density should not be critical")
	}
}

func TestFacadeCircuitAndNetlist(t *testing.T) {
	deck := `title
V1 in 0 DC 1
R1 in out 1k
R2 out 0 1k
.end
`
	parsed, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	x, err := parsed.Circuit.DCOperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[parsed.Circuit.Node("out")]-0.5) > 1e-9 {
		t.Errorf("divider = %v, want 0.5", x[parsed.Circuit.Node("out")])
	}
	// Building circuits through the facade works too.
	c := NewCircuit()
	n := c.Node("n")
	if err := c.AddR(n, -1, 5); err != nil && n == 0 {
		t.Log("AddR ground usage exercised")
	}
}

func TestFacadeCoupledPair(t *testing.T) {
	p := CoupledPair{R: 4400, L: 2e-6, Cg: 5e-11, Cm: 4e-11, Lm: 1.5e-6}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MillerSpread() <= 1 {
		t.Error("coupled pair must have spread > 1")
	}
	if p.OddMode().C <= p.EvenMode().C {
		t.Error("odd mode must have more capacitance")
	}
}
