#!/bin/sh
# checkpoint_smoke.sh — end-to-end smoke test of spicesim's checkpoint/resume.
#
# Builds the real spicesim binary, runs a ladder deck to completion for a
# reference waveform, re-runs it with -checkpoint and kills it with SIGINT
# mid-run, resumes with -resume, and requires the final waveform to be
# bit-identical to the uninterrupted reference. Exercises the whole
# run-control path (signal handling, partial write, snapshot atomicity,
# resume validation) through the CLI rather than the test suite.
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

go build -o "$work/spicesim" ./cmd/spicesim

# A 60-segment RLC ladder, 20k output steps: a few seconds of solve time,
# so the mid-run SIGINT below has a wide window to land in.
deck="$work/smoke.cir"
{
	echo '* RLC ladder checkpoint smoke deck'
	echo 'V1 in 0 PULSE(0 1 0.1n 0.05n 0.05n 5n 10n)'
	echo 'R0 in n0 25'
	i=0
	while [ $i -lt 60 ]; do
		j=$((i + 1))
		echo "L$i n$i n$j 0.05n"
		echo "R$j n$j n${j}m 2"
		echo "C$i n${j}m 0 0.01p"
		i=$j
	done
	echo 'Rload n60m out 10'
	echo 'Cload out 0 0.05p'
	echo '.tran 2p 40n'
	echo '.end'
} >"$deck"

echo "checkpoint_smoke: reference run"
"$work/spicesim" -i "$deck" -probe out -o "$work/ref.csv" 2>/dev/null

echo "checkpoint_smoke: interrupted run (SIGINT once the first snapshot lands)"
"$work/spicesim" -i "$deck" -probe out \
	-checkpoint "$work/run.ckpt" -o "$work/out.csv" 2>"$work/interrupt.log" &
pid=$!
# Kill only after a snapshot exists so -resume always has something to load.
n=0
while [ ! -f "$work/run.ckpt" ] && [ $n -lt 200 ]; do
	kill -0 "$pid" 2>/dev/null || break
	sleep 0.05
	n=$((n + 1))
done
kill -INT "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 2 ]; then
	echo "checkpoint_smoke: FAIL: interrupted run exited $rc, want 2 (stop)" >&2
	cat "$work/interrupt.log" >&2
	exit 1
fi
if ! cmp -s "$work/ref.csv" "$work/out.csv"; then
	echo "checkpoint_smoke: interrupted run wrote a partial waveform, as expected"
fi

echo "checkpoint_smoke: resuming"
"$work/spicesim" -i "$deck" -probe out \
	-checkpoint "$work/run.ckpt" -resume -o "$work/out.csv" 2>/dev/null

if ! cmp -s "$work/ref.csv" "$work/out.csv"; then
	echo "checkpoint_smoke: FAIL: resumed waveform differs from the uninterrupted reference" >&2
	exit 1
fi
echo "checkpoint_smoke: PASS: resumed waveform is bit-identical to the reference"
