#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the rlcd serving daemon.
#
# Builds the real rlcd binary, starts it on a private port, and drives it
# the way a client would: /healthz readiness, an optimize whose identical
# repeat must come back X-Cache: hit, a coalesced burst of identical sweeps
# that must collapse onto one computation, and a SIGTERM that must drain
# gracefully (exit 0). Exercises the serving stack — admission, caching,
# coalescing, signal handling — through the binary rather than the test
# suite.
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"; kill "$pid" 2>/dev/null || true' EXIT

go build -o "$work/rlcd" ./cmd/rlcd

port=18921
"$work/rlcd" -addr "127.0.0.1:$port" 2>"$work/rlcd.log" &
pid=$!
base="http://127.0.0.1:$port"

echo "serve_smoke: waiting for /healthz"
n=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	n=$((n + 1))
	if [ $n -gt 100 ]; then
		echo "serve_smoke: FAIL: daemon never became healthy" >&2
		cat "$work/rlcd.log" >&2
		exit 1
	fi
	kill -0 "$pid" 2>/dev/null || { echo "serve_smoke: FAIL: daemon died" >&2; cat "$work/rlcd.log" >&2; exit 1; }
	sleep 0.1
done

echo "serve_smoke: optimize (cold, then cached)"
req='{"tech":"100nm","l":2e-6,"f":0.5}'
curl -fsS -D "$work/h1" -o "$work/b1" -d "$req" "$base/v1/optimize"
curl -fsS -D "$work/h2" -o "$work/b2" -d "$req" "$base/v1/optimize"
grep -qi '^x-cache: miss' "$work/h1" || { echo "serve_smoke: FAIL: first optimize not a miss" >&2; cat "$work/h1" >&2; exit 1; }
grep -qi '^x-cache: hit' "$work/h2" || { echo "serve_smoke: FAIL: repeat optimize not a cache hit" >&2; cat "$work/h2" >&2; exit 1; }
cmp -s "$work/b1" "$work/b2" || { echo "serve_smoke: FAIL: cached body differs" >&2; exit 1; }
grep -q '"h":' "$work/b1" || { echo "serve_smoke: FAIL: optimize body malformed" >&2; cat "$work/b1" >&2; exit 1; }

echo "serve_smoke: coalesced sweep burst (4 identical clients)"
sweep='{"tech":"100nm","ls":[0,5e-7,1e-6,2e-6,3e-6,4e-6],"f":0.5}'
curl_pids=""
for i in 1 2 3 4; do
	curl -fsS -o "$work/s$i" -d "$sweep" "$base/v1/sweep" &
	curl_pids="$curl_pids $!"
done
for cp in $curl_pids; do
	wait "$cp" || { echo "serve_smoke: FAIL: sweep client exited nonzero" >&2; exit 1; }
done
for i in 1 2 3 4; do
	[ "$(grep -c '"type":"point"' "$work/s$i")" = 6 ] || {
		echo "serve_smoke: FAIL: sweep client $i did not stream 6 points" >&2
		cat "$work/s$i" >&2
		exit 1
	}
	grep -q '"type":"done"' "$work/s$i" || { echo "serve_smoke: FAIL: sweep client $i missing done record" >&2; exit 1; }
done

echo "serve_smoke: metrics show cache hits and coalescing"
curl -fsS "$base/metrics" >"$work/metrics"
grep -q '"hits": *[1-9]' "$work/metrics" || { echo "serve_smoke: FAIL: no cache hits in /metrics" >&2; cat "$work/metrics" >&2; exit 1; }
# 4 identical sweep clients over 6 points = 1 chunk computed once; at least
# one of them must have joined the shared flight or hit the cache.
grep -Eq '"(coalesced|hit)": *[1-9]' "$work/metrics" || { echo "serve_smoke: FAIL: burst was not coalesced" >&2; cat "$work/metrics" >&2; exit 1; }

echo "serve_smoke: typed error mapping"
code=$(curl -s -o "$work/err" -w '%{http_code}' -d '{"tech":"100nm","l":2e-6,"f":1.5}' "$base/v1/optimize")
[ "$code" = 400 ] || { echo "serve_smoke: FAIL: domain error returned $code, want 400" >&2; exit 1; }
grep -q '"kind":"domain"' "$work/err" || { echo "serve_smoke: FAIL: error envelope missing kind" >&2; cat "$work/err" >&2; exit 1; }

echo "serve_smoke: SIGTERM graceful drain"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
	echo "serve_smoke: FAIL: graceful drain exited $rc, want 0" >&2
	cat "$work/rlcd.log" >&2
	exit 1
fi
grep -q 'drained cleanly' "$work/rlcd.log" || { echo "serve_smoke: FAIL: no clean-drain log line" >&2; cat "$work/rlcd.log" >&2; exit 1; }
echo "serve_smoke: PASS"
