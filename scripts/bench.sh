#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and emit a machine-readable
# snapshot BENCH_<UTC-date>.json in the repo root. Committing these
# snapshots over time gives the repo a benchmark trajectory: every
# performance PR records the before/after numbers it claims.
#
# Usage:
#   scripts/bench.sh                     # full run (go test -bench . -benchmem)
#   BENCHTIME=1x scripts/bench.sh        # CI smoke: one iteration per benchmark
#   SUFFIX=tag scripts/bench.sh          # write BENCH_<date>_tag.json instead
#   scripts/bench.sh serve               # serving-path benchmarks only
#       (cached vs cold HTTP round trips) -> BENCH_<date>_serve.json
#   scripts/bench.sh fleet               # fleet-mode benchmarks only
#       (local hit vs forwarded hit vs failover) -> BENCH_<date>_fleet.json
#   scripts/bench.sh mor                 # transient figure benchmarks only
#       (Fig9-12, the reduced-order fast path) -> BENCH_<date>_mor.json
#   scripts/bench.sh pdn                 # power-grid mesh benchmarks only
#       (factor/solve at 1e3/1e4/1e5 nodes + ordering comparison)
#       -> BENCH_<date>_pdn.json
#   scripts/bench.sh power               # power-subsystem benchmarks only
#       (Pareto-front trace with warm-start continuation)
#       -> BENCH_<date>_power.json
#   scripts/bench.sh compare [new] [base]
#       Diff two snapshots and exit nonzero on a >15% ns/op regression or
#       ANY allocs/op increase for benchmarks present in both. new defaults
#       to the most recently modified BENCH_*.json on disk, base to the
#       newest snapshot committed to git. Most regressions exit 1 and CI
#       treats them as a soft gate (timing on shared runners is noisy; alloc
#       counts are not) — but a ns/op regression on the transient figure
#       benchmarks Fig9-12 or the PDN mesh solves (BenchmarkPDNSolve*) exits
#       3, which CI treats as a hard failure: Fig9-12 are the reduced-order
#       fast path's contract and the mesh solves are the sparse engine's —
#       a >15% slide means the reduction or the iterative path stopped
#       engaging.
#
# Output schema: {"date": ..., "go": ..., "benchmarks": [{"op": name,
# "ns_per_op": float, "b_per_op": int, "allocs_per_op": int}, ...]}
# Entries keep the -N GOMAXPROCS suffix stripped so names stay stable
# across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

compare() {
  local base new
  # Default baseline: the snapshot most recently added to git history.
  base="${2:-$(git log --format= --name-only --diff-filter=A -- 'BENCH_*.json' | awk 'NF' | head -1)}"
  new="${1:-$(ls -t BENCH_*.json 2>/dev/null | grep -vxF "$base" | head -1 || true)}"
  if [[ -z "$base" || -z "$new" || ! -f "$base" || ! -f "$new" ]]; then
    echo "compare: need two snapshots (new='$new' base='$base')" >&2
    return 2
  fi
  echo "comparing $new against baseline $base"
  awk -v tol=0.15 '
  function getnum(key,    m) {
      if (match($0, "\"" key "\": [0-9.eE+-]+")) {
          m = substr($0, RSTART, RLENGTH)
          sub(/^.*: /, "", m)
          return m
      }
      return ""
  }
  /"op"/ {
      if (!match($0, /"op": "[^"]+"/)) next
      name = substr($0, RSTART + 7, RLENGTH - 8)
      ns = getnum("ns_per_op"); al = getnum("allocs_per_op")
      if (FNR == NR) { bns[name] = ns; bal[name] = al; next }
      if (!(name in bns)) { added++; next }
      compared++
      if (bns[name] + 0 > 0 && ns + 0 > bns[name] * (1 + tol)) {
          printf "REGRESSION %-28s ns/op %12.0f -> %12.0f (+%.1f%%)\n",
                 name, bns[name], ns, (ns / bns[name] - 1) * 100
          bad = 1
          # Fig9-12 (reduced-order fast path) and the PDN mesh solves
          # (sparse-engine iterative path) are perf contracts: hard failure.
          if (name ~ /^BenchmarkFig(9|1[0-2])$/ || name ~ /^BenchmarkPDNSolve/) hard = 1
      }
      if (al != "" && bal[name] != "" && al + 0 > bal[name] + 0) {
          printf "REGRESSION %-28s allocs/op %6d -> %6d\n", name, bal[name], al
          bad = 1
      }
  }
  END {
      printf "compared %d benchmarks (%d new-only)\n", compared, added
      if (compared == 0) { print "compare: no overlapping benchmarks" ; exit 2 }
      if (hard) { print "HARD FAILURE: perf-contract benchmark (Fig9-12 / PDNSolve) regressed" ; exit 3 }
      exit bad
  }' "$base" "$new"
}

if [[ "${1:-}" == "compare" ]]; then
  shift
  compare "$@"
  exit $?
fi

benchtime="${BENCHTIME:-}"
pattern=.
pkgs=(./...)
if [[ "${1:-}" == "serve" ]]; then
  # Serving-path snapshot: the HTTP round trip with the result cache
  # answering vs the full cold solve behind admission control.
  pattern='BenchmarkServe'
  pkgs=(./internal/serve/)
  : "${SUFFIX:=serve}"
elif [[ "${1:-}" == "fleet" ]]; then
  # Fleet-mode snapshot: local shard hit vs one forwarding hop to the key's
  # owner vs failover (dead owner -> local compute) -> BENCH_<date>_fleet.json
  pattern='BenchmarkFleet'
  pkgs=(./internal/serve/)
  : "${SUFFIX:=fleet}"
elif [[ "${1:-}" == "mor" ]]; then
  # Transient figure snapshot: the ring-oscillator benchmarks served by the
  # Krylov reduced-order fast path -> BENCH_<date>_mor.json
  pattern='^BenchmarkFig(9|1[0-2])$'
  pkgs=(.)
  : "${SUFFIX:=mor}"
elif [[ "${1:-}" == "pdn" ]]; then
  # Power-grid mesh snapshot: engine factor/solve at 1e3/1e4/1e5 nodes plus
  # the AMD-vs-natural direct ordering comparison -> BENCH_<date>_pdn.json.
  # Custom metrics (fill-ratio, iters, nnz(L+U)) land in each entry's
  # "extra" object.
  pattern='^BenchmarkPDN'
  pkgs=(./internal/pdn/)
  : "${SUFFIX:=pdn}"
elif [[ "${1:-}" == "power" ]]; then
  # Power-subsystem snapshot: the delay/power Pareto-front trace (warm-start
  # continuation over the λ grid) -> BENCH_<date>_power.json. Soft compare
  # tier: timing regressions exit 1, not 3.
  pattern='^BenchmarkParetoFront'
  pkgs=(./internal/power/)
  : "${SUFFIX:=power}"
fi
args=(test -run '^$' -bench "$pattern" -benchmem -timeout 60m "${pkgs[@]}")
if [[ -n "$benchtime" ]]; then
  args+=(-benchtime "$benchtime")
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go "${args[@]}" | tee "$raw"

date_utc="$(date -u +%Y-%m-%d)"
out="BENCH_${date_utc}${SUFFIX:+_${SUFFIX}}.json"
go_version="$(go version | awk '{print $3}')"

awk -v date="$date_utc" -v gover="$go_version" '
BEGIN { n = 0 }
# Benchmark result lines look like:
#   BenchmarkFig9-8   3   417071363 ns/op   5175389 B/op   158938 allocs/op
$1 ~ /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    ns = ""; bop = ""; aop = ""; extra = ""
    for (i = 3; i <= NF; i++) {
        # Result lines are "<iters> <value unit>..." pairs; anything beyond
        # the three standard units is a testing.B.ReportMetric custom metric
        # (fill-ratio, iters, ...) and is carried in the "extra" object of
        # each entry so snapshots keep the factor-shape story, not just times.
        if ($i == "ns/op")          ns  = $(i-1)
        else if ($i == "B/op")      bop = $(i-1)
        else if ($i == "allocs/op") aop = $(i-1)
        else if ($(i-1) ~ /^[0-9.eE+-]+$/ && $i !~ /^[0-9.eE+-]+$/) {
            if (extra != "") extra = extra ", "
            extra = extra "\"" $i "\": " $(i-1)
        }
    }
    if (ns == "") next
    if (bop == "") bop = "null"
    if (aop == "") aop = "null"
    ex = ""
    if (extra != "") ex = ", \"extra\": {" extra "}"
    ops[n] = sprintf("    {\"op\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s%s}",
                     name, ns, bop, aop, ex)
    n++
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
    for (i = 0; i < n; i++) printf "%s%s\n", ops[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

count="$(grep -c '"op"' "$out" || true)"
echo "wrote $out ($count benchmarks)"
