#!/usr/bin/env bash
# bench.sh — run the full benchmark suite and emit a machine-readable
# snapshot BENCH_<UTC-date>.json in the repo root. Committing these
# snapshots over time gives the repo a benchmark trajectory: every
# performance PR records the before/after numbers it claims.
#
# Usage:
#   scripts/bench.sh              # full run (go test -bench . -benchmem)
#   BENCHTIME=1x scripts/bench.sh # CI smoke: one iteration per benchmark
#
# Output schema: {"date": ..., "go": ..., "benchmarks": [{"op": name,
# "ns_per_op": float, "b_per_op": int, "allocs_per_op": int}, ...]}
# Entries keep the -N GOMAXPROCS suffix stripped so names stay stable
# across machines.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-}"
args=(test -run '^$' -bench . -benchmem -timeout 60m ./...)
if [[ -n "$benchtime" ]]; then
  args+=(-benchtime "$benchtime")
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go "${args[@]}" | tee "$raw"

date_utc="$(date -u +%Y-%m-%d)"
out="BENCH_${date_utc}.json"
go_version="$(go version | awk '{print $3}')"

awk -v date="$date_utc" -v gover="$go_version" '
BEGIN { n = 0 }
# Benchmark result lines look like:
#   BenchmarkFig9-8   3   417071363 ns/op   5175389 B/op   158938 allocs/op
$1 ~ /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    ns = ""; bop = ""; aop = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i-1)
        if ($i == "B/op")      bop = $(i-1)
        if ($i == "allocs/op") aop = $(i-1)
    }
    if (ns == "") next
    ops[n] = sprintf("    {\"op\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}",
                     name, ns, (bop == "" ? "null" : bop), (aop == "" ? "null" : aop))
    n++
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
    for (i = 0; i < n; i++) printf "%s%s\n", ops[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
}' "$raw" > "$out"

count="$(grep -c '"op"' "$out" || true)"
echo "wrote $out ($count benchmarks)"
