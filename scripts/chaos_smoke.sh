#!/bin/sh
# chaos_smoke.sh — chaos/resilience smoke test of the rlcd serving daemon.
#
# Builds the real rlcd binary and drives the resilience machinery end to
# end, through the binary rather than the test suite:
#
#   1. startup flag validation rejects nonsense with a usage error (exit 2);
#   2. under injected solver faults every failure is answered degraded
#      (X-Degraded + "degraded":true), no_degraded opts out, the region's
#      circuit breaker opens (visible in /statusz and /metrics), and abrupt
#      client disconnects leave the daemon healthy;
#   3. SIGTERM with a sweep in flight drains cleanly and writes the cache
#      snapshot;
#   4. a healthy daemon SIGKILLed mid-traffic restarts warm: the periodic
#      snapshot makes the repeat request an X-Cache hit;
#   5. a corrupted snapshot is a cold start, never a crash.
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pid=""
trap 'rm -rf "$work"; [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

go build -o "$work/rlcd" ./cmd/rlcd

port=18931
base="http://127.0.0.1:$port"
snap="$work/cache.snap"

# Poll /readyz, not /healthz: liveness goes 200 while the snapshot replay
# is still running, and the warm-restart phase below needs the replayed
# cache before its first request.
wait_healthy() {
	n=0
	until curl -fsS "$base/readyz" >/dev/null 2>&1; do
		n=$((n + 1))
		if [ $n -gt 100 ]; then
			echo "chaos_smoke: FAIL: daemon never became healthy" >&2
			cat "$1" >&2
			exit 1
		fi
		kill -0 "$pid" 2>/dev/null || { echo "chaos_smoke: FAIL: daemon died" >&2; cat "$1" >&2; exit 1; }
		sleep 0.1
	done
}

echo "chaos_smoke: flag validation fails fast with usage errors"
for args in "-inflight -3" "-drain 0s" "-fault-op core.eval" "-fault-every 5" "-cache-bytes -1"; do
	rc=0
	# shellcheck disable=SC2086
	"$work/rlcd" $args 2>"$work/usage.log" || rc=$?
	[ "$rc" = 2 ] || { echo "chaos_smoke: FAIL: rlcd $args exited $rc, want 2" >&2; cat "$work/usage.log" >&2; exit 1; }
	grep -q '^rlcd: ' "$work/usage.log" || { echo "chaos_smoke: FAIL: rlcd $args printed no usage error" >&2; exit 1; }
done

echo "chaos_smoke: phase 1 — injected faults, degraded answers, breaker"
"$work/rlcd" -addr "127.0.0.1:$port" \
	-fault-op core.eval -fault-every 1 \
	-breaker-threshold 3 -breaker-cooldown 30s \
	-snapshot "$snap" -snapshot-interval 100ms \
	2>"$work/chaos.log" &
pid=$!
wait_healthy "$work/chaos.log"
grep -q 'config: ' "$work/chaos.log" || { echo "chaos_smoke: FAIL: no effective-config boot log" >&2; cat "$work/chaos.log" >&2; exit 1; }

# Distinct inductances in one half-decade: distinct cache keys, one breaker
# region. Every solve fails (every core.eval faults), so every answer
# must be a flagged degraded 200.
for l in 1.1e-6 1.5e-6 2e-6 2.5e-6 3e-6 3.5e-6; do
	curl -fsS -D "$work/dh" -o "$work/db" -d "{\"tech\":\"100nm\",\"l\":$l,\"f\":0.5}" "$base/v1/optimize"
	grep -qi '^x-degraded:' "$work/dh" || { echo "chaos_smoke: FAIL: l=$l not degraded" >&2; cat "$work/dh" "$work/db" >&2; exit 1; }
	grep -q '"degraded":true' "$work/db" || { echo "chaos_smoke: FAIL: l=$l body not flagged" >&2; cat "$work/db" >&2; exit 1; }
	grep -q '"estimate"' "$work/db" || { echo "chaos_smoke: FAIL: l=$l degraded without estimate" >&2; cat "$work/db" >&2; exit 1; }
done

echo "chaos_smoke: no_degraded opts out (hard failure, no X-Degraded)"
code=$(curl -s -D "$work/nh" -o "$work/nb" -w '%{http_code}' \
	-d '{"tech":"100nm","l":1.2e-6,"f":0.5,"no_degraded":true}' "$base/v1/optimize")
case "$code" in
422 | 503) ;;
*) echo "chaos_smoke: FAIL: no_degraded returned $code, want 422/503" >&2; cat "$work/nb" >&2; exit 1 ;;
esac
grep -qi '^x-degraded:' "$work/nh" && { echo "chaos_smoke: FAIL: opted-out response carries X-Degraded" >&2; exit 1; }

echo "chaos_smoke: breaker visible in /statusz and /metrics"
curl -fsS "$base/statusz" >"$work/statusz"
grep -q '"state": "open"' "$work/statusz" || { echo "chaos_smoke: FAIL: no open breaker in /statusz" >&2; cat "$work/statusz" >&2; exit 1; }
curl -fsS "$base/metrics" >"$work/metrics"
grep -q '"open": *[1-9]' "$work/metrics" || { echo "chaos_smoke: FAIL: no breaker open transition in /metrics" >&2; exit 1; }
# With the breaker open, the short-circuit answers degraded with its reason.
curl -fsS -D "$work/sh" -o /dev/null -d '{"tech":"100nm","l":1.3e-6,"f":0.5}' "$base/v1/optimize"
grep -qi '^x-degraded: breaker-open' "$work/sh" || { echo "chaos_smoke: FAIL: open breaker did not short-circuit" >&2; cat "$work/sh" >&2; exit 1; }

echo "chaos_smoke: abrupt client disconnects leave the daemon healthy"
for i in 1 2 3; do
	curl -s -m 0.2 -d '{"tech":"100nm","ls":[1e-7,2e-7,3e-7,4e-7,5e-7],"f":0.5}' "$base/v1/sweep" >/dev/null 2>&1 || true
done
curl -fsS "$base/healthz" >/dev/null || { echo "chaos_smoke: FAIL: daemon unhealthy after disconnects" >&2; exit 1; }

echo "chaos_smoke: SIGTERM with a sweep in flight drains and snapshots"
curl -s -d '{"tech":"250nm","ls":[1e-7,2e-7,3e-7],"f":0.5}' "$base/v1/sweep" >/dev/null 2>&1 &
sweep_pid=$!
sleep 0.1
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
wait "$sweep_pid" 2>/dev/null || true
[ "$rc" = 0 ] || { echo "chaos_smoke: FAIL: drain exited $rc, want 0" >&2; cat "$work/chaos.log" >&2; exit 1; }
[ -s "$snap" ] || { echo "chaos_smoke: FAIL: drain wrote no snapshot" >&2; exit 1; }

echo "chaos_smoke: phase 2 — healthy daemon, SIGKILL, warm restart"
rm -f "$snap"
"$work/rlcd" -addr "127.0.0.1:$port" -snapshot "$snap" -snapshot-interval 100ms 2>"$work/healthy.log" &
pid=$!
wait_healthy "$work/healthy.log"
req='{"tech":"100nm","l":2e-6,"f":0.5}'
curl -fsS -D "$work/h1" -o "$work/b1" -d "$req" "$base/v1/optimize"
grep -qi '^x-cache: miss' "$work/h1" || { echo "chaos_smoke: FAIL: first healthy optimize not a miss" >&2; exit 1; }
grep -qi '^x-degraded:' "$work/h1" && { echo "chaos_smoke: FAIL: healthy solve flagged degraded" >&2; exit 1; }
# Wait until a periodic save has captured our entry (the snapshot payload
# carries cache keys as plain text), then kill without any drain.
n=0
until grep -q '"key":"optimize' "$snap" 2>/dev/null; do
	n=$((n + 1))
	[ $n -le 50 ] || { echo "chaos_smoke: FAIL: periodic snapshot never captured the entry" >&2; exit 1; }
	sleep 0.1
done
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

"$work/rlcd" -addr "127.0.0.1:$port" -snapshot "$snap" -snapshot-interval 100ms 2>"$work/warm.log" &
pid=$!
wait_healthy "$work/warm.log"
curl -fsS -D "$work/h2" -o "$work/b2" -d "$req" "$base/v1/optimize"
grep -qi '^x-cache: hit' "$work/h2" || {
	echo "chaos_smoke: FAIL: restarted daemon did not answer warm" >&2
	cat "$work/h2" "$work/warm.log" >&2
	exit 1
}
cmp -s "$work/b1" "$work/b2" || { echo "chaos_smoke: FAIL: warm body differs from original" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid" || true

echo "chaos_smoke: phase 3 — corrupt snapshot is a cold start, not a crash"
printf 'not a snapshot \000\377' >"$snap"
"$work/rlcd" -addr "127.0.0.1:$port" -snapshot "$snap" 2>"$work/corrupt.log" &
pid=$!
wait_healthy "$work/corrupt.log"
grep -q 'cold start' "$work/corrupt.log" || { echo "chaos_smoke: FAIL: corrupt snapshot not logged as cold start" >&2; cat "$work/corrupt.log" >&2; exit 1; }
curl -fsS -D "$work/h3" -o /dev/null -d "$req" "$base/v1/optimize"
grep -qi '^x-cache: miss' "$work/h3" || { echo "chaos_smoke: FAIL: cold start served a hit" >&2; exit 1; }
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
[ "$rc" = 0 ] || { echo "chaos_smoke: FAIL: final drain exited $rc" >&2; exit 1; }
pid=""

echo "chaos_smoke: PASS"
