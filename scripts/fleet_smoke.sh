#!/bin/sh
# fleet_smoke.sh — multi-process smoke test of rlcd fleet mode.
#
# Boots three real rlcd daemons that know each other as peers and drives the
# fault-tolerant forwarding path end to end, through the binaries:
#
#   1. all three come ready and cross-shard requests are actually forwarded
#      (X-Cache: forwarded with an X-Fleet-Peer attribution);
#   2. one member is SIGKILLed mid-burst: every client response across the
#      burst stays 2xx — the survivors detect the dead peer, fail over to
#      local compute, and keep answering (zero client-visible hard failures);
#   3. the survivors' probes eject the dead peer (statusz shows it down),
#      and after a restart they re-admit it (statusz shows it up again);
#   4. a SIGHUP with a -peers-file rewrites ring membership without a
#      restart.
set -eu

cd "$(dirname "$0")/.."
work=$(mktemp -d)
pids=""
trap 'rm -rf "$work"; for p in $pids; do kill -9 "$p" 2>/dev/null || true; done' EXIT

go build -o "$work/rlcd" ./cmd/rlcd

p1=18941 p2=18942 p3=18943
a1="127.0.0.1:$p1" a2="127.0.0.1:$p2" a3="127.0.0.1:$p3"

# start_member <port> <self> <peers-csv-or-@file> <log>
start_member() {
	if [ "${3#@}" != "$3" ]; then
		set -- "$1" "$2" "-peers-file ${3#@}" "$4"
	else
		set -- "$1" "$2" "-peers $3" "$4"
	fi
	# shellcheck disable=SC2086
	"$work/rlcd" -addr "127.0.0.1:$1" -self "$2" $3 \
		-probe-interval 100ms -probe-rise 2 -probe-fall 2 \
		-forward-timeout 500ms -hedge-after 250ms \
		-breaker-threshold 10 -breaker-cooldown 2s \
		2>"$work/$4" &
	last_pid=$!
	pids="$pids $last_pid"
}

wait_ready() {
	n=0
	until curl -fsS "http://$1/readyz" >/dev/null 2>&1; do
		n=$((n + 1))
		[ $n -le 100 ] || { echo "fleet_smoke: FAIL: $1 never became ready" >&2; cat "$work/$2" >&2; exit 1; }
		sleep 0.1
	done
}

echo "fleet_smoke: fleet flag validation fails fast"
rc=0
"$work/rlcd" -peers "$a2" 2>"$work/usage.log" || rc=$?
[ "$rc" = 2 ] || { echo "fleet_smoke: FAIL: -peers without -self exited $rc, want 2" >&2; exit 1; }

echo "fleet_smoke: phase 1 — three members come ready"
start_member "$p1" "$a1" "$a2,$a3" m1.log; pid1=$last_pid
start_member "$p2" "$a2" "$a1,$a3" m2.log; pid2=$last_pid
start_member "$p3" "$a3" "$a1,$a2" m3.log
wait_ready "$a1" m1.log
wait_ready "$a2" m2.log
wait_ready "$a3" m3.log
grep -q 'fleet: self=' "$work/m1.log" || { echo "fleet_smoke: FAIL: no fleet boot log" >&2; cat "$work/m1.log" >&2; exit 1; }

# Readiness is per-instance; peer admission takes -probe-rise successful
# probes on top of that. Wait until member 1 routes to both peers before
# expecting forwards.
n=0
until [ "$(curl -fsS "http://$a1/statusz" | grep -c '"up": true')" = 2 ]; do
	n=$((n + 1))
	[ $n -le 50 ] || { echo "fleet_smoke: FAIL: peers never admitted" >&2; curl -fsS "http://$a1/statusz" >&2; exit 1; }
	sleep 0.1
done

echo "fleet_smoke: cross-shard requests are forwarded with peer attribution"
# Distinct keys spread across shards: with 3 members, most keys sent to one
# member are owned elsewhere, so forwards must show up quickly.
forwarded=0
i=0
while [ $i -lt 12 ]; do
	l="1.$((10 + i))e-6"
	curl -fsS -D "$work/fh" -o "$work/fb" -d "{\"tech\":\"100nm\",\"l\":$l,\"f\":0.5}" "http://$a1/v1/optimize" \
		|| { echo "fleet_smoke: FAIL: optimize l=$l failed" >&2; cat "$work/fb" >&2; exit 1; }
	if grep -qi '^x-cache: forwarded' "$work/fh"; then
		forwarded=$((forwarded + 1))
		grep -qi "^x-fleet-peer: " "$work/fh" || { echo "fleet_smoke: FAIL: forwarded answer without X-Fleet-Peer" >&2; cat "$work/fh" >&2; exit 1; }
	fi
	i=$((i + 1))
done
[ "$forwarded" -ge 1 ] || { echo "fleet_smoke: FAIL: 12 cross-shard requests, zero forwarded" >&2; exit 1; }
echo "fleet_smoke:   $forwarded/12 requests forwarded to their owner"
curl -fsS "http://$a1/metrics" | grep -q '"forwarded": *[1-9]' \
	|| { echo "fleet_smoke: FAIL: /metrics shows no forwards" >&2; exit 1; }

echo "fleet_smoke: phase 2 — SIGKILL one member mid-burst, zero hard failures"
kill -9 "$pid2"
wait "$pid2" 2>/dev/null || true
fails=0
i=0
while [ $i -lt 30 ]; do
	# Mixed burst against both survivors: repeat keys (hits), fresh keys
	# (misses, some owned by the dead member), and a small sweep.
	case $((i % 3)) in
	0) url="http://$a1/v1/optimize"; body="{\"tech\":\"100nm\",\"l\":2.$((i))e-6,\"f\":0.5}" ;;
	1) url="http://$a3/v1/optimize"; body="{\"tech\":\"100nm\",\"l\":1.$((10 + i))e-6,\"f\":0.5}" ;;
	2) url="http://$a1/v1/sweep"; body='{"tech":"100nm","ls":[1e-7,2e-7,3e-7],"f":0.5}' ;;
	esac
	code=$(curl -s -o "$work/kb" -w '%{http_code}' -d "$body" "$url" || echo 000)
	case "$code" in
	2??) ;;
	*)
		fails=$((fails + 1))
		echo "fleet_smoke:   hard failure: $url -> $code" >&2
		cat "$work/kb" >&2 || true
		;;
	esac
	i=$((i + 1))
done
[ "$fails" = 0 ] || { echo "fleet_smoke: FAIL: $fails/30 requests failed hard after SIGKILL" >&2; cat "$work/m1.log" >&2; exit 1; }

echo "fleet_smoke: phase 3 — survivors eject the dead peer"
n=0
until curl -fsS "http://$a1/statusz" | grep -A3 "\"addr\": \"$a2\"" | grep -q '"up": false'; do
	n=$((n + 1))
	[ $n -le 50 ] || { echo "fleet_smoke: FAIL: $a2 never marked down in statusz" >&2; curl -fsS "http://$a1/statusz" >&2; exit 1; }
	sleep 0.1
done
grep -q "fleet: peer $a2 ejected" "$work/m1.log" || { echo "fleet_smoke: FAIL: no ejection log line" >&2; cat "$work/m1.log" >&2; exit 1; }

echo "fleet_smoke: phase 3 — restarted peer is re-admitted"
start_member "$p2" "$a2" "$a1,$a3" m2b.log
wait_ready "$a2" m2b.log
n=0
until curl -fsS "http://$a1/statusz" | grep -A3 "\"addr\": \"$a2\"" | grep -q '"up": true'; do
	n=$((n + 1))
	[ $n -le 100 ] || { echo "fleet_smoke: FAIL: $a2 never re-admitted" >&2; curl -fsS "http://$a1/statusz" >&2; exit 1; }
	sleep 0.1
done
curl -fsS "http://$a1/metrics" | grep -q '"readmitted": *[1-9]' \
	|| { echo "fleet_smoke: FAIL: no readmitted count in /metrics" >&2; exit 1; }

echo "fleet_smoke: phase 4 — SIGHUP reloads the peers file"
kill -TERM "$pid1"
wait "$pid1" 2>/dev/null || true
printf '# fleet members\n%s\n%s\n' "$a2" "$a3" >"$work/peers.txt"
start_member "$p1" "$a1" "@$work/peers.txt" m1b.log; pid1=$last_pid
wait_ready "$a1" m1b.log
printf '%s\n' "$a3" >"$work/peers.txt"
kill -HUP "$pid1"
n=0
until curl -fsS "http://$a1/statusz" | grep -q '"members": 2'; do
	n=$((n + 1))
	[ $n -le 50 ] || { echo "fleet_smoke: FAIL: SIGHUP did not shrink membership to 2" >&2; curl -fsS "http://$a1/statusz" >&2; exit 1; }
	sleep 0.1
done
grep -q 'fleet: peers reloaded' "$work/m1b.log" || { echo "fleet_smoke: FAIL: no reload log line" >&2; cat "$work/m1b.log" >&2; exit 1; }

echo "fleet_smoke: PASS"
