// Command mc runs the Monte-Carlo inductance-uncertainty analysis: it
// samples the line inductance of a technology's global wire from a chosen
// distribution and reports the statistics of a fixed repeater design's stage
// delay, plus (optionally) the penalty over the per-sample optimum — the
// statistical form of the paper's Section 3.2 argument.
//
// Usage:
//
//	mc [-tech 100nm] [-h 11.1] [-k 528] [-lmin 0.5] [-lmax 4.5] [-mode 0]
//	   [-n 500] [-seed 1] [-penalty] [-workers 4] [-timeout 30s] [-trials out.csv]
//
// -h in mm; -lmin/-lmax/-mode in nH/mm (mode 0 selects a uniform
// distribution, nonzero a triangular one peaked there). -penalty runs one
// optimization per sample and is correspondingly slower.
//
// Run control: trials are evaluated over a bounded worker pool (-workers);
// results are bit-identical for every worker count because each trial draws
// from its own seed-derived RNG stream. -trials streams completed trials to
// a CSV as they finish, in trial order, so a run stopped by ^C or -timeout
// keeps every completed row and still prints the statistics of the prefix.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlcint"
	"rlcint/internal/core"
	"rlcint/internal/mc"
	"rlcint/internal/runctl"
)

func main() {
	techName := flag.String("tech", "100nm", "technology node")
	hMM := flag.Float64("h", 11.1, "fixed segment length, mm")
	k := flag.Float64("k", 528, "fixed repeater size")
	lmin := flag.Float64("lmin", 0.5, "minimum line inductance, nH/mm")
	lmax := flag.Float64("lmax", 4.5, "maximum line inductance, nH/mm")
	mode := flag.Float64("mode", 0, "triangular mode, nH/mm (0 = uniform)")
	n := flag.Int("n", 500, "number of samples")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic)")
	penalty := flag.Bool("penalty", false, "also compute the penalty over per-sample optima")
	workers := flag.Int("workers", 1, "parallel trial evaluations (results identical for any count)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	trialsPath := flag.String("trials", "", "stream per-trial values to this CSV as they complete")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	var dist mc.Dist
	if *mode > 0 {
		dist = mc.Triangular{
			Lo: *lmin * rlcint.NHPerMM, Mode: *mode * rlcint.NHPerMM, Hi: *lmax * rlcint.NHPerMM,
		}
	} else {
		dist = mc.Uniform{Lo: *lmin * rlcint.NHPerMM, Hi: *lmax * rlcint.NHPerMM}
	}
	p := core.Problem{Device: rlcint.DeviceOf(t), Line: rlcint.Line{R: t.R, C: t.C}}

	opts := mc.Opts{Workers: *workers, Limits: runctl.Limits{Timeout: *timeout}}
	if *trialsPath != "" {
		fh, err := os.Create(*trialsPath)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		w := bufio.NewWriter(fh)
		fmt.Fprintln(w, "trial,tau_ps")
		w.Flush()
		// Completed trials land on disk immediately, in order, so an
		// interrupted run leaves a valid CSV prefix.
		opts.OnTrial = func(i int, v float64) error {
			fmt.Fprintf(w, "%d,%.4f\n", i, v/rlcint.PS)
			return w.Flush()
		}
	}

	start := time.Now()
	stopped := false
	st, err := mc.DelayUnderUncertaintyCtx(ctx, p, *hMM*rlcint.MM, *k, dist, *n, *seed, opts)
	if err != nil {
		if !runctl.IsStop(err) || st.N < 2 {
			fatal(err)
		}
		stopped = true
		fmt.Fprintf(os.Stderr, "mc: stopped after %d/%d trials (%v): %v\n", st.N, *n,
			time.Since(start).Round(time.Millisecond), err)
	}
	fmt.Printf("%s, fixed design h=%.1f mm k=%.0f, l ~ [%.1f, %.1f] nH/mm, %d samples\n",
		t.Name, *hMM, *k, *lmin, *lmax, st.N)
	fmt.Printf("stage delay: mean %.1f ps, std %.1f ps\n", st.Mean/rlcint.PS, st.Std/rlcint.PS)
	fmt.Printf("             min %.1f, p50 %.1f, p95 %.1f, max %.1f ps\n",
		st.Min/rlcint.PS, st.P50/rlcint.PS, st.P95/rlcint.PS, st.Max/rlcint.PS)
	fmt.Printf("spread (max/min): %.2fx\n", st.Max/st.Min)

	if *penalty {
		np := *n
		if np > 60 {
			np = 60 // one optimization per sample
		}
		popts := mc.Opts{Workers: *workers, Limits: runctl.Limits{Timeout: *timeout}}
		ps, err := mc.PenaltyUnderUncertaintyCtx(ctx, p, *hMM*rlcint.MM, *k, dist, np, *seed, popts)
		if err != nil {
			if !runctl.IsStop(err) || ps.N < 2 {
				fatal(err)
			}
			stopped = true
			fmt.Fprintf(os.Stderr, "mc: penalty pass stopped after %d/%d trials: %v\n", ps.N, np, err)
		}
		fmt.Printf("penalty over per-sample optimum (%d samples): mean %.1f%%, p95 %.1f%%, worst %.1f%%\n",
			ps.N, 100*(ps.Mean-1), 100*(ps.P95-1), 100*(ps.Max-1))
	}
	if stopped {
		os.Exit(2) // interrupted: the printed statistics cover only a prefix
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mc:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
