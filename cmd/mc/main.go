// Command mc runs the Monte-Carlo inductance-uncertainty analysis: it
// samples the line inductance of a technology's global wire from a chosen
// distribution and reports the statistics of a fixed repeater design's stage
// delay, plus (optionally) the penalty over the per-sample optimum — the
// statistical form of the paper's Section 3.2 argument.
//
// Usage:
//
//	mc [-tech 100nm] [-h 11.1] [-k 528] [-lmin 0.5] [-lmax 4.5] [-mode 0]
//	   [-n 500] [-seed 1] [-penalty]
//
// -h in mm; -lmin/-lmax/-mode in nH/mm (mode 0 selects a uniform
// distribution, nonzero a triangular one peaked there). -penalty runs one
// optimization per sample and is correspondingly slower.
package main

import (
	"flag"
	"fmt"
	"os"

	"rlcint"
	"rlcint/internal/core"
	"rlcint/internal/mc"
)

func main() {
	techName := flag.String("tech", "100nm", "technology node")
	hMM := flag.Float64("h", 11.1, "fixed segment length, mm")
	k := flag.Float64("k", 528, "fixed repeater size")
	lmin := flag.Float64("lmin", 0.5, "minimum line inductance, nH/mm")
	lmax := flag.Float64("lmax", 4.5, "maximum line inductance, nH/mm")
	mode := flag.Float64("mode", 0, "triangular mode, nH/mm (0 = uniform)")
	n := flag.Int("n", 500, "number of samples")
	seed := flag.Int64("seed", 1, "random seed (runs are deterministic)")
	penalty := flag.Bool("penalty", false, "also compute the penalty over per-sample optima")
	flag.Parse()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	var dist mc.Dist
	if *mode > 0 {
		dist = mc.Triangular{
			Lo: *lmin * rlcint.NHPerMM, Mode: *mode * rlcint.NHPerMM, Hi: *lmax * rlcint.NHPerMM,
		}
	} else {
		dist = mc.Uniform{Lo: *lmin * rlcint.NHPerMM, Hi: *lmax * rlcint.NHPerMM}
	}
	p := core.Problem{Device: rlcint.DeviceOf(t), Line: rlcint.Line{R: t.R, C: t.C}}

	st, err := mc.DelayUnderUncertainty(p, *hMM*rlcint.MM, *k, dist, *n, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s, fixed design h=%.1f mm k=%.0f, l ~ [%.1f, %.1f] nH/mm, %d samples\n",
		t.Name, *hMM, *k, *lmin, *lmax, st.N)
	fmt.Printf("stage delay: mean %.1f ps, std %.1f ps\n", st.Mean/rlcint.PS, st.Std/rlcint.PS)
	fmt.Printf("             min %.1f, p50 %.1f, p95 %.1f, max %.1f ps\n",
		st.Min/rlcint.PS, st.P50/rlcint.PS, st.P95/rlcint.PS, st.Max/rlcint.PS)
	fmt.Printf("spread (max/min): %.2fx\n", st.Max/st.Min)

	if *penalty {
		np := *n
		if np > 60 {
			np = 60 // one optimization per sample
		}
		ps, err := mc.PenaltyUnderUncertainty(p, *hMM*rlcint.MM, *k, dist, np, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("penalty over per-sample optimum (%d samples): mean %.1f%%, p95 %.1f%%, worst %.1f%%\n",
			ps.N, 100*(ps.Mean-1), 100*(ps.P95-1), 100*(ps.Max-1))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mc:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
