// Command rlcd is the rlcint serving daemon: an HTTP/JSON API over the
// library's public facade with result caching, request coalescing, and
// admission control.
//
// Usage:
//
//	rlcd [-addr :8080] [-inflight N] [-queue N] [-timeout 30s]
//	     [-cache-entries 4096] [-cache-bytes 67108864] [-drain 30s]
//
// Endpoints (all request/response bodies JSON, SI units):
//
//	POST /v1/optimize     {"tech","l","f"}                → RLC optimum
//	POST /v1/delay        {"tech","l","h","k","f"}        → stage delay
//	POST /v1/plan         {"tech","l","f","length"}       → realizable plan
//	POST /v1/optimize-rc  {"tech"}                        → Elmore optimum
//	POST /v1/lcrit        {"tech","l","h","k"}            → Eq. (4)
//	POST /v1/sweep        {"tech","ls":[...],"f","warm"}  → NDJSON stream
//	POST /v1/check/oxide  {"tech","overshoot_v"}          → oxide report
//	POST /v1/check/wire   {"peak_j","rms_j"}              → wire report
//	GET  /healthz  GET /metrics  /debug/pprof/  /debug/vars
//
// SIGINT/SIGTERM drain in-flight solves gracefully within -drain; a second
// signal or an expired drain forces the stop and exits with status 2,
// matching the library's CLI run-control convention.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlcint/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests beyond -inflight (0 = 64)")
	timeout := flag.Duration("timeout", 0, "default per-request compute budget (0 = 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested timeout_ms (0 = 2m)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache entry bound (0 = 4096, negative = disable)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte bound (0 = 64MiB)")
	maxPoints := flag.Int("max-sweep-points", 0, "per-request sweep grid bound (0 = 65536)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	logger := log.New(os.Stderr, "rlcd ", log.LstdFlags|log.Lmicroseconds)
	srv := serve.New(serve.Config{
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		MaxSweepPoints: *maxPoints,
		Logger:         logger,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Printf("server error: %v", err)
		os.Exit(1)
	case s := <-sig:
		logger.Printf("signal %v: draining (budget %s; second signal forces stop)", s, *drain)
	}

	// Graceful drain: stop accepting, let in-flight requests finish. A
	// second signal or an exhausted drain budget cancels every solve (they
	// unwind at the next runctl tick) and exits 2, the forced-stop status
	// the CLIs use.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sig
		logger.Printf("second signal: forcing stop")
		cancel()
	}()
	err := hs.Shutdown(drainCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = hs.Close()
		fmt.Fprintln(os.Stderr, "rlcd: forced stop:", err)
		os.Exit(2)
	}
	logger.Printf("drained cleanly")
}
