// Command rlcd is the rlcint serving daemon: an HTTP/JSON API over the
// library's public facade with result caching, request coalescing,
// admission control, persistent cache snapshots, per-region circuit
// breakers, and degraded-mode answers.
//
// Usage:
//
//	rlcd [-addr :8080] [-inflight N] [-queue N] [-timeout 30s]
//	     [-cache-entries 4096] [-cache-bytes 67108864] [-drain 30s]
//	     [-snapshot /path/cache.snap] [-snapshot-interval 30s]
//	     [-breaker-threshold 5] [-breaker-cooldown 10s] [-no-degraded]
//	     [-self host:port] [-peers h1:p1,h2:p2 | -peers-file /path]
//	     [-fleet-replicas 2] [-probe-interval 1s] [-hedge-after 0]
//	     [-forward-attempts 3] [-forward-timeout 1s] [-forward-budget 2.5s]
//	     [-max-hops 3]
//
// Endpoints (all request/response bodies JSON, SI units):
//
//	POST /v1/optimize     {"tech","l","f"}                → RLC optimum
//	POST /v1/delay        {"tech","l","h","k","f"}        → stage delay
//	POST /v1/plan         {"tech","l","f","length"}       → realizable plan
//	POST /v1/optimize-rc  {"tech"}                        → Elmore optimum
//	POST /v1/lcrit        {"tech","l","h","k"}            → Eq. (4)
//	POST /v1/sweep        {"tech","ls":[...],"f","warm"}  → NDJSON stream
//	POST /v1/check/oxide  {"tech","overshoot_v"}          → oxide report
//	POST /v1/check/wire   {"peak_j","rms_j"}              → wire report
//	GET  /healthz  GET /readyz  GET /metrics  GET /statusz
//	     /debug/pprof/  /debug/vars
//
// /healthz is liveness (the process is up); /readyz is readiness and
// answers 503 while the startup snapshot replays and after the first
// drain signal — point load balancers and fleet probes at /readyz.
//
// Fleet mode: -peers (or -peers-file, one address per line, reloaded on
// SIGHUP) joins this daemon to a peer ring. Each cache key has one owner
// instance; cache-missed solver requests are forwarded to their owner
// (bounded retries across ring replicas with jittered backoff, optional
// -hedge-after tail-latency hedging), so identical queries hit a warm
// cache no matter which instance the client reached. When the owner and
// its replicas are down, the local instance computes the answer itself —
// fleet topology never fails a request.
//
// With -snapshot the result cache is restored at startup and persisted
// every -snapshot-interval and on drain, so a restarted daemon answers
// warm. A corrupt or version-skewed snapshot is skipped (cold start),
// never fatal. Solver endpoints degrade to closed-form estimates
// ("degraded": true, X-Degraded header) when the full solve fails, times
// out, or the request region's circuit breaker is open; -no-degraded
// turns that off daemon-wide, and clients opt out per request with
// "no_degraded": true.
//
// The -fault-op/-fault-every pair injects a solver fault into every Nth
// hit of the named operation site — a chaos-testing aid, never for
// production.
//
// SIGINT/SIGTERM drain in-flight solves gracefully within -drain; a second
// signal or an expired drain forces the stop and exits with status 2,
// matching the library's CLI run-control convention.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rlcint/internal/diag"
	"rlcint/internal/fleet"
	"rlcint/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	inflight := flag.Int("inflight", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued requests beyond -inflight (0 = 64, negative = no queue)")
	timeout := flag.Duration("timeout", 0, "default per-request compute budget (0 = 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested timeout_ms (0 = 2m)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache entry bound (0 = 4096, negative = disable)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte bound (0 = 64MiB)")
	maxPoints := flag.Int("max-sweep-points", 0, "per-request sweep grid bound (0 = 65536)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	snapshot := flag.String("snapshot", "", "cache snapshot file: restored at startup, saved periodically and on drain (empty = disabled)")
	snapshotInterval := flag.Duration("snapshot-interval", 0, "periodic snapshot cadence (0 = 30s, negative = on-drain only)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive failures opening a region's circuit breaker (0 = 5, negative = disable)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open breaker cooldown before a half-open probe (0 = 10s)")
	noDegraded := flag.Bool("no-degraded", false, "disable degraded-mode answers; failures surface as errors")
	faultOp := flag.String("fault-op", "", "chaos testing: operation site to fault (e.g. core.eval, fleet.transport)")
	faultEvery := flag.Int("fault-every", 0, "chaos testing: fault every Nth hit of -fault-op (0 = disabled)")
	self := flag.String("self", "", "fleet: this instance's advertised host:port (required with -peers/-peers-file)")
	peers := flag.String("peers", "", "fleet: comma-separated peer host:port list")
	peersFile := flag.String("peers-file", "", "fleet: file with one peer host:port per line (# comments); reloaded on SIGHUP")
	fleetReplicas := flag.Int("fleet-replicas", 0, "fleet: ring replicas tried after the owner (0 = 2)")
	probeInterval := flag.Duration("probe-interval", 0, "fleet: peer readiness-probe cadence (0 = 1s, negative = no probing)")
	probeRise := flag.Int("probe-rise", 0, "fleet: consecutive probe successes to re-admit a peer (0 = 2)")
	probeFall := flag.Int("probe-fall", 0, "fleet: consecutive failures to eject a peer (0 = 2)")
	hedgeAfter := flag.Duration("hedge-after", 0, "fleet: hedge a slow forward to the next replica after this delay (0 = disabled)")
	forwardAttempts := flag.Int("forward-attempts", 0, "fleet: max peer attempts per request, hedges included (0 = 3)")
	forwardTimeout := flag.Duration("forward-timeout", 0, "fleet: per-attempt forward timeout (0 = 1s)")
	forwardBudget := flag.Duration("forward-budget", 0, "fleet: total forwarding time budget per request (0 = 2.5s, negative = none)")
	maxHops := flag.Int("max-hops", 0, "fleet: forwarding-depth cap before computing locally (0 = 3)")
	flag.Parse()

	// Fail fast on nonsense values with a usage error rather than letting a
	// typo'd unit or sign boot a daemon with surprising behavior. Negative
	// values with a defined meaning (-queue, -cache-entries,
	// -snapshot-interval, -breaker-threshold) stay legal.
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rlcd: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *addr == "" {
		usageErr("-addr must not be empty")
	}
	if *inflight < 0 {
		usageErr("-inflight must be non-negative, got %d", *inflight)
	}
	if *timeout < 0 || *maxTimeout < 0 {
		usageErr("-timeout and -max-timeout must be non-negative, got %s and %s", *timeout, *maxTimeout)
	}
	if *cacheBytes < 0 {
		usageErr("-cache-bytes must be non-negative, got %d", *cacheBytes)
	}
	if *maxPoints < 0 {
		usageErr("-max-sweep-points must be non-negative, got %d", *maxPoints)
	}
	if *drain <= 0 {
		usageErr("-drain must be positive, got %s", *drain)
	}
	if *breakerCooldown < 0 {
		usageErr("-breaker-cooldown must be non-negative, got %s", *breakerCooldown)
	}
	if *faultEvery < 0 {
		usageErr("-fault-every must be non-negative, got %d", *faultEvery)
	}
	if (*faultOp == "") != (*faultEvery == 0) {
		usageErr("-fault-op and -fault-every must be set together")
	}
	fleetWanted := *peers != "" || *peersFile != ""
	if *peers != "" && *peersFile != "" {
		usageErr("-peers and -peers-file are mutually exclusive")
	}
	if fleetWanted && *self == "" {
		usageErr("-self is required with -peers/-peers-file (the address peers use for this instance)")
	}
	if !fleetWanted && *self != "" {
		usageErr("-self is only meaningful with -peers/-peers-file")
	}
	if *fleetReplicas < 0 || *forwardAttempts < 0 || *maxHops < 0 || *probeRise < 0 || *probeFall < 0 {
		usageErr("fleet counts must be non-negative")
	}
	if *hedgeAfter < 0 || *forwardTimeout < 0 {
		usageErr("-hedge-after and -forward-timeout must be non-negative, got %s and %s", *hedgeAfter, *forwardTimeout)
	}

	logger := log.New(os.Stderr, "rlcd ", log.LstdFlags|log.Lmicroseconds)
	var injector *diag.Injector
	if *faultOp != "" {
		injector = diag.FaultEvery(*faultOp, *faultEvery, diag.ErrNonConvergence)
		logger.Printf("CHAOS: faulting every %d hit(s) of %q", *faultEvery, *faultOp)
	}
	var fleetCfg *fleet.Config
	if fleetWanted {
		fleetCfg = &fleet.Config{
			Self:           *self,
			PeersFile:      *peersFile,
			Replicas:       *fleetReplicas,
			ProbeInterval:  *probeInterval,
			Rise:           *probeRise,
			Fall:           *probeFall,
			AttemptTimeout: *forwardTimeout,
			MaxAttempts:    *forwardAttempts,
			ForwardBudget:  *forwardBudget,
			HedgeAfter:     *hedgeAfter,
			MaxHops:        *maxHops,
		}
		if *peers != "" {
			for _, p := range strings.Split(*peers, ",") {
				if p = strings.TrimSpace(p); p != "" {
					fleetCfg.Peers = append(fleetCfg.Peers, p)
				}
			}
		}
	}
	cfg := serve.Config{
		MaxInflight:      *inflight,
		MaxQueue:         *queue,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		MaxSweepPoints:   *maxPoints,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *snapshotInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		DisableDegraded:  *noDegraded,
		Fleet:            fleetCfg,
		Injector:         injector,
		Logger:           logger,
	}
	srv := serve.New(cfg)
	eff := srv.EffectiveConfig()
	logger.Printf("config: inflight=%d queue=%d timeout=%s max-timeout=%s cache-entries=%d cache-bytes=%d max-sweep-points=%d snapshot=%q snapshot-interval=%s breaker-threshold=%d breaker-cooldown=%s degraded=%t",
		eff.MaxInflight, eff.MaxQueue, eff.DefaultTimeout, eff.MaxTimeout,
		eff.CacheEntries, eff.CacheBytes, eff.MaxSweepPoints,
		eff.SnapshotPath, eff.SnapshotInterval,
		eff.BreakerThreshold, eff.BreakerCooldown, !eff.DisableDegraded)
	if fl := srv.Fleet(); fl != nil {
		logger.Printf("fleet: self=%s replicas=%d max-hops=%d hedge-after=%s peers-file=%q",
			fl.Self(), *fleetReplicas, fl.MaxHops(), *hedgeAfter, *peersFile)
		// SIGHUP re-reads -peers-file; with a static -peers list it logs and
		// keeps the current membership.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if *peersFile == "" {
					logger.Printf("fleet: SIGHUP ignored (no -peers-file)")
					continue
				}
				_ = fl.ReloadPeers()
			}
		}()
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logger.Printf("listening on %s", *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Printf("server error: %v", err)
		os.Exit(1)
	case s := <-sig:
		// Flip readiness first: fleet probes and load balancers see the
		// instance leave rotation while in-flight requests finish draining.
		srv.BeginDrain()
		logger.Printf("signal %v: draining (budget %s; second signal forces stop)", s, *drain)
	}

	// Graceful drain: stop accepting, let in-flight requests finish. A
	// second signal or an exhausted drain budget cancels every solve (they
	// unwind at the next runctl tick) and exits 2, the forced-stop status
	// the CLIs use. srv.Close also writes the final cache snapshot.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	go func() {
		<-sig
		logger.Printf("second signal: forcing stop")
		cancel()
	}()
	err := hs.Shutdown(drainCtx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		_ = hs.Close()
		fmt.Fprintln(os.Stderr, "rlcd: forced stop:", err)
		os.Exit(2)
	}
	logger.Printf("drained cleanly")
}
