// Command extract computes per-unit-length interconnect parameters from
// cross-section geometry: resistance (with temperature), capacitance (2-D
// BEM with ground plane and neighbours, plus closed-form estimates), and
// loop inductance versus current-return distance — the library's substitute
// for the paper's FASTCAP/field-solver flow.
//
// Usage:
//
//	extract [-w 2] [-t 2.5] [-pitch 4] [-tins 15.4] [-epsr 2.0] [-temp 90]
//	        [-len 11.1] [-return 15.4,100,500,1000]
//
// Lengths are in µm except -len (mm); -return lists return-path distances
// in µm.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rlcint"
	"rlcint/internal/extract"
)

func main() {
	w := flag.Float64("w", 2, "line width, µm")
	th := flag.Float64("t", 2.5, "line thickness, µm")
	pitch := flag.Float64("pitch", 4, "line pitch, µm")
	tins := flag.Float64("tins", 15.4, "height over substrate, µm")
	epsr := flag.Float64("epsr", 2.0, "dielectric constant")
	temp := flag.Float64("temp", 90, "operating temperature, °C")
	length := flag.Float64("len", 11.1, "wire length for inductance, mm")
	returns := flag.String("return", "15.4,100,500,1000", "return distances, µm (comma separated)")
	flag.Parse()

	um := rlcint.UM
	r, err := rlcint.ExtractResistance(*w*um, *th*um, *temp)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("resistance: %.3f Ω/mm (Cu at %.0f °C)\n", r/rlcint.OhmPerMM, *temp)

	c, err := rlcint.ExtractCapacitance(*w*um, *th*um, *pitch*um, *tins*um, *epsr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("capacitance (2-D BEM, grounded neighbours): %.2f pF/m\n", c/rlcint.PFPerM)
	st, err := extract.SakuraiTamaru(*w*um, *th*um, *tins*um, *epsr)
	if err != nil {
		fatal(err)
	}
	cg, cc, err := extract.CoupledCap(*w*um, *th*um, *tins*um, (*pitch-*w)*um, *epsr)
	if err != nil {
		fatal(err)
	}
	lo, hi := extract.MillerRange(cg, cc)
	fmt.Printf("closed forms: isolated %.2f pF/m; ground+2·coupling %.2f pF/m; Miller range %.2f–%.2f pF/m\n",
		st/rlcint.PFPerM, (cg+2*cc)/rlcint.PFPerM, lo/rlcint.PFPerM, hi/rlcint.PFPerM)

	fmt.Printf("loop inductance for a %.1f mm wire:\n", *length)
	for _, s := range strings.Split(*returns, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("bad return distance %q: %w", s, err))
		}
		l, err := rlcint.ExtractLoopInductance(*w*um, *th*um, *length*rlcint.MM, d*um)
		if err != nil {
			fatal(err)
		}
		note := ""
		if l >= 5*rlcint.NHPerMM {
			note = "  (exceeds the paper's 5 nH/mm practical bound)"
		}
		fmt.Printf("  return at %7.1f µm: %.3f nH/mm%s\n", d, l/rlcint.NHPerMM, note)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "extract:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
