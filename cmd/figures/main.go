// Command figures regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 2 and 4–12) as CSV files plus aligned-text
// summaries on stdout.
//
// Usage:
//
//	figures [-only id] [-out dir] [-points n] [-fast] [-workers n] [-timeout d] [-warm=false]
//
// where id is one of: table1, fig2, fig4, fig5, fig6, fig7, fig8, fig9,
// fig10, fig11, fig12, pareto, valid, all (default all). -fast reduces
// transient resolution for a quick smoke run. pareto is the delay/power
// Pareto front of the power-aware subsystem, not a figure of the source
// paper.
//
// With -only all the artifacts evaluate concurrently over a bounded worker
// pool; each artifact's text renders into its own buffer and buffers flush
// to stdout in the canonical order as soon as each artifact (and all before
// it) is done. ^C or an exhausted -timeout stops the run, keeps every
// completed artifact's output, and exits with status 2. Figures 4–8 run
// through the batched sweep engine with Newton warm-start continuation;
// pass -warm=false for the cold engine (bit-identical to the serial
// reference path).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"rlcint"
	"rlcint/internal/awe"
	"rlcint/internal/num"
	"rlcint/internal/pade"
	"rlcint/internal/runctl"
	"rlcint/internal/waveform"
)

func main() {
	only := flag.String("only", "all", "which artifact to regenerate")
	outDir := flag.String("out", "out", "output directory for CSV files")
	points := flag.Int("points", 13, "sweep points per curve for Figures 4-8")
	fast := flag.Bool("fast", false, "reduce transient resolution (Figures 9-12)")
	workers := flag.Int("workers", 0, "parallel artifact/point evaluations (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	warm := flag.Bool("warm", true, "warm-start continuation for the Figure 4-8 sweeps")
	reduce := flag.Bool("reduce", true, "allow the Krylov reduced-order fast path for the transient figures")
	noReduction := flag.Bool("no-reduction", false, "force the full transient solver (equivalent to -reduce=false)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	base := gen{
		dir:         *outDir,
		points:      *points,
		fast:        *fast,
		noReduction: !*reduce || *noReduction,
		ctx:         ctx,
		sweep:       rlcint.SweepOptions{Workers: *workers, Warm: *warm},
	}

	if *only == "all" {
		runAll(ctx, base, *workers)
		return
	}
	g := base
	g.w = os.Stdout
	f, ok := artifactsOf(&g)[*only]
	if !ok {
		fatal(fmt.Errorf("unknown artifact %q", *only))
	}
	if err := f(); err != nil {
		if rlcint.IsRunStop(err) {
			fmt.Fprintln(os.Stderr, "figures: stopped:", err)
			os.Exit(2)
		}
		fatal(err)
	}
}

// allOrder is the canonical artifact sequence of a full run (fig4 covers
// Figures 4-8, which share one sweep).
var allOrder = []string{"table1", "fig2", "fig4", "fig9", "fig10", "fig11", "fig12", "pareto", "valid"}

// runAll evaluates every artifact concurrently, each rendering into its own
// buffer, and flushes the buffers to stdout in canonical order as they (and
// all their predecessors) complete — so an interrupted run still prints a
// clean prefix of whole artifacts.
func runAll(ctx context.Context, base gen, workers int) {
	ctl := runctl.New(ctx, rlcint.RunLimits{})
	done := 0
	err := runctl.Stream(ctl, workers, len(allOrder),
		func(i int) (*bytes.Buffer, error) {
			g := base
			var buf bytes.Buffer
			g.w = &buf
			if err := artifactsOf(&g)[allOrder[i]](); err != nil {
				return nil, fmt.Errorf("%s: %w", allOrder[i], err)
			}
			return &buf, nil
		},
		func(i int, buf *bytes.Buffer) error {
			done++
			_, err := os.Stdout.Write(buf.Bytes())
			return err
		})
	if err != nil {
		if rlcint.IsRunStop(err) {
			fmt.Fprintf(os.Stderr, "figures: stopped after %d/%d artifacts: %v\n", done, len(allOrder), err)
			os.Exit(2)
		}
		fatal(err)
	}
}

func artifactsOf(g *gen) map[string]func() error {
	return map[string]func() error{
		"table1": g.table1,
		"fig2":   g.fig2,
		"fig4":   g.figs4to8, // Figures 4-8 share one sweep
		"fig5":   g.figs4to8,
		"fig6":   g.figs4to8,
		"fig7":   g.figs4to8,
		"fig8":   g.figs4to8,
		"fig9":   func() error { return g.waveFig("fig9", 1.8e-6) },
		"fig10":  func() error { return g.waveFig("fig10", 2.2e-6) },
		"fig11":  g.fig11,
		"fig12":  g.fig12,
		"pareto": g.pareto,
		"valid":  g.valid,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", rlcint.DiagString(err, nil))
	os.Exit(1)
}

type gen struct {
	dir         string
	points      int
	fast        bool
	noReduction bool
	w           io.Writer
	ctx         context.Context
	sweep       rlcint.SweepOptions
	sweepRan    bool
}

func (g *gen) csv(name string, t []float64, cols []string, series ...[]float64) error {
	f, err := os.Create(filepath.Join(g.dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return waveform.WriteCSV(f, t, cols, series...)
}

// table1 regenerates the derived columns of Table 1 from (r_s, c_0, c_p)
// and, inversely, re-extracts the device from the published optima.
func (g *gen) table1() error {
	fmt.Fprintln(g.w, "== Table 1: technology parameters and RC optima ==")
	fmt.Fprintf(g.w, "%-8s %10s %10s %10s %12s %10s %10s\n",
		"node", "h_opt(mm)", "k_opt", "tau(ps)", "rs(kΩ)", "c0(fF)", "cp(fF)")
	var rows [][]float64
	for _, t := range rlcint.Technologies() {
		rc, err := rlcint.OptimizeRC(t)
		if err != nil {
			return err
		}
		d, err := rlcint.ExtractDevice(rlcint.LineOf(t, 0), rc.H, rc.K, rc.Tau)
		if err != nil {
			return err
		}
		fmt.Fprintf(g.w, "%-8s %10.1f %10.0f %10.2f %12.3f %10.4f %10.4f\n",
			t.Name, rc.H/rlcint.MM, rc.K, rc.Tau/rlcint.PS,
			d.Rs/rlcint.KOhm, d.C0/rlcint.FF, d.Cp/rlcint.FF)
		rows = append(rows, []float64{rc.H / rlcint.MM, rc.K, rc.Tau / rlcint.PS,
			d.Rs / rlcint.KOhm, d.C0 / rlcint.FF, d.Cp / rlcint.FF})
	}
	idx := []float64{250, 100}
	cols := []string{"h_opt_mm", "k_opt", "tau_ps", "rs_kohm", "c0_fF", "cp_fF"}
	series := make([][]float64, len(cols))
	for c := range cols {
		series[c] = []float64{rows[0][c], rows[1][c]}
	}
	return g.csv("table1.csv", idx, cols, series...)
}

// fig2 renders the canonical over/critically/under-damped step responses.
func (g *gen) fig2() error {
	fmt.Fprintln(g.w, "== Figure 2: second-order step responses ==")
	ts := num.Linspace(0, 12, 601)
	curves := map[string]pade.Model{}
	for _, c := range []struct {
		name string
		zeta float64
	}{{"overdamped", 2}, {"critical", 1}, {"underdamped", 0.3}} {
		m, err := pade.New(2*c.zeta, 1) // b2 = 1 → ωn = 1
		if err != nil {
			return err
		}
		curves[c.name] = m
	}
	over := sample(curves["overdamped"], ts)
	crit := sample(curves["critical"], ts)
	under := sample(curves["underdamped"], ts)
	os, _ := curves["underdamped"].Overshoot()
	fmt.Fprintf(g.w, "underdamped (ζ=0.3) overshoot: %.1f%%\n", 100*os)
	return g.csv("fig2.csv", ts, []string{"overdamped", "critical", "underdamped"}, over, crit, under)
}

func sample(m pade.Model, ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = m.Step(t)
	}
	return out
}

// figs4to8 runs the three technology sweeps through the batched engine and
// writes Figures 4-8.
func (g *gen) figs4to8() error {
	if g.sweepRan {
		return nil
	}
	g.sweepRan = true
	ls := num.Linspace(0.1e-6, 4.9e-6, g.points)
	techs := []rlcint.Technology{rlcint.Tech250(), rlcint.Tech100(), rlcint.Tech100Eps250()}
	fmt.Fprintf(g.w, "sweeping %d nodes × %d points (warm=%v)...\n", len(techs), len(ls), g.sweep.Warm)
	rows, err := rlcint.SweepNodes(g.ctx, g.sweep, techs, ls, 0.5)
	if err != nil {
		return err
	}
	lsN := make([]float64, len(ls))
	for i, l := range ls {
		lsN[i] = l / rlcint.NHPerMM
	}
	get := func(ci int, f func(rlcint.SweepPoint) float64) []float64 {
		out := make([]float64, len(ls))
		for i, p := range rows[ci].Points {
			out[i] = f(p)
		}
		return out
	}
	names := []string{"n250", "n100", "n100eps250"}
	figs := []struct {
		file, title string
		f           func(rlcint.SweepPoint) float64
	}{
		{"fig4.csv", "Figure 4: l_crit (nH/mm) at the RLC optimum", func(p rlcint.SweepPoint) float64 { return p.LCrit / rlcint.NHPerMM }},
		{"fig5.csv", "Figure 5: h_optRLC / h_optRC", func(p rlcint.SweepPoint) float64 { return p.HRatio }},
		{"fig6.csv", "Figure 6: k_optRLC / k_optRC", func(p rlcint.SweepPoint) float64 { return p.KRatio }},
		{"fig7.csv", "Figure 7: optimal (tau/h) ratio, RLC vs l=0", func(p rlcint.SweepPoint) float64 { return p.DelayRatio }},
		{"fig8.csv", "Figure 8: tau/h at RC sizing over RLC optimum", func(p rlcint.SweepPoint) float64 { return p.Penalty }},
	}
	for _, fg := range figs {
		s0, s1, s2 := get(0, fg.f), get(1, fg.f), get(2, fg.f)
		if err := g.csv(fg.file, lsN, names, s0, s1, s2); err != nil {
			return err
		}
		fmt.Fprintf(g.w, "== %s ==\n", fg.title)
		fmt.Fprintf(g.w, "%-12s %10s %10s %12s\n", "l (nH/mm)", "250nm", "100nm", "100nm-eps")
		for i := range lsN {
			fmt.Fprintf(g.w, "%-12.2f %10.3f %10.3f %12.3f\n", lsN[i], s0[i], s1[i], s2[i])
		}
	}
	last := len(ls) - 1
	fmt.Fprintf(g.w, "Figure 7 endpoints: 250nm %.2fx (paper ≈2), 100nm %.2fx (paper ≈3.5)\n",
		get(0, figs[3].f)[last], get(1, figs[3].f)[last])
	fmt.Fprintf(g.w, "Figure 8 worst penalties: 250nm %.1f%% (paper 6%%), 100nm %.1f%% (paper 12%%)\n",
		100*(maxOf(get(0, figs[4].f))-1), 100*(maxOf(get(1, figs[4].f))-1))
	return nil
}

func maxOf(v []float64) float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

func (g *gen) ringCfg(l float64) rlcint.RingConfig {
	cfg := rlcint.RingConfig{Node: rlcint.Tech100(), LineL: l, NoReduction: g.noReduction}
	if g.fast {
		cfg.Sections = 10
	}
	return cfg
}

// waveFig writes the monitored inverter's input/output waveforms for
// Figures 9 (l = 1.8 nH/mm) and 10 (l = 2.2 nH/mm).
func (g *gen) waveFig(name string, l float64) error {
	fmt.Fprintf(g.w, "== %s: ring oscillator waveforms at l=%.1f nH/mm ==\n", name, l/rlcint.NHPerMM)
	w, met, err := rlcint.RunRing(g.ringCfg(l))
	if err != nil {
		return err
	}
	fmt.Fprintf(g.w, "period %.3f ns, overshoot %.3f V, undershoot %.3f V\n",
		met.Period*1e9, met.Overshoot, met.Undershoot)
	ox, err := rlcint.CheckOxide(rlcint.Tech100(), met.Overshoot)
	if err != nil {
		return err
	}
	fmt.Fprintf(g.w, "oxide field with overshoot: %.2f MV/cm (limit 5, critical 7) over-limit=%v\n",
		ox.Field/1e8, ox.OverLimit)
	return g.csv(name+".csv", w.T, []string{"vin", "vout"}, w.VIn, w.VOut)
}

// fig11 sweeps the ring period versus inductance for both nodes.
func (g *gen) fig11() error {
	fmt.Fprintln(g.w, "== Figure 11: ring oscillator period vs line inductance ==")
	ls := []float64{0.4e-6, 0.8e-6, 1.2e-6, 1.6e-6, 2.0e-6, 2.4e-6, 2.6e-6, 2.8e-6, 3.0e-6, 3.5e-6}
	if g.fast {
		ls = []float64{0.8e-6, 1.8e-6, 2.8e-6}
	}
	p100, err := rlcint.SweepRingPeriod(g.ringCfg(0), ls)
	if err != nil {
		return err
	}
	cfg250 := rlcint.RingConfig{Node: rlcint.Tech250()}
	if g.fast {
		cfg250.Sections = 10
	}
	p250, err := rlcint.SweepRingPeriod(cfg250, ls)
	if err != nil {
		return err
	}
	lsN := make([]float64, len(ls))
	per100 := make([]float64, len(ls))
	per250 := make([]float64, len(ls))
	fmt.Fprintf(g.w, "%-12s %14s %10s %14s\n", "l (nH/mm)", "100nm T (ns)", "collapsed", "250nm T (ns)")
	for i := range ls {
		lsN[i] = ls[i] / rlcint.NHPerMM
		per100[i] = p100[i].Metrics.Period * 1e9
		per250[i] = p250[i].Metrics.Period * 1e9
		fmt.Fprintf(g.w, "%-12.2f %14.3f %10v %14.3f\n", lsN[i], per100[i], p100[i].Collapsed, per250[i])
	}
	return g.csv("fig11.csv", lsN, []string{"period100_ns", "period250_ns"}, per100, per250)
}

// fig12 sweeps peak and rms current density versus inductance (100 nm).
func (g *gen) fig12() error {
	fmt.Fprintln(g.w, "== Figure 12: wire current density vs line inductance (100 nm) ==")
	ls := []float64{0.4e-6, 1.0e-6, 1.6e-6, 2.2e-6, 2.6e-6}
	if g.fast {
		ls = []float64{0.8e-6, 2.2e-6}
	}
	lsN := make([]float64, len(ls))
	peak := make([]float64, len(ls))
	rms := make([]float64, len(ls))
	fmt.Fprintf(g.w, "%-12s %16s %16s %8s\n", "l (nH/mm)", "peakJ (MA/cm²)", "rmsJ (MA/cm²)", "pass")
	for i, l := range ls {
		_, met, err := rlcint.RunRing(g.ringCfg(l))
		if err != nil {
			return err
		}
		rep, err := rlcint.CheckWire(met.PeakJ, met.RMSJ)
		if err != nil {
			return err
		}
		lsN[i] = l / rlcint.NHPerMM
		peak[i] = met.PeakJ / 1e10 // A/m² → MA/cm²
		rms[i] = met.RMSJ / 1e10
		fmt.Fprintf(g.w, "%-12.2f %16.3f %16.3f %8v\n", lsN[i], peak[i], rms[i], !rep.RMSOver && !rep.PeakOver)
	}
	return g.csv("fig12.csv", lsN, []string{"peakJ_MAcm2", "rmsJ_MAcm2"}, peak, rms)
}

// pareto traces the delay/power Pareto front of the buffered 100 nm line
// (l = 2 nH/mm, α = 0.15, f_clk = 1 GHz) and reports the mixed-scheme
// power plan for a 30 mm net — the power/delay tradeoff the power-aware
// subsystem reproduces (≥15% power saved within a 5% delay penalty).
func (g *gen) pareto() error {
	fmt.Fprintln(g.w, "== Pareto: delay/power front and mixed-scheme plan (100 nm, l=2 nH/mm) ==")
	const l = 2e-6
	prm := rlcint.PowerParams{Alpha: 0.15, Freq: 1e9}
	m, err := rlcint.NewPowerModel(rlcint.Tech100(), l, prm)
	if err != nil {
		return err
	}
	opts := rlcint.ParetoOptions{Points: g.points, Workers: g.sweep.Workers, Cold: !g.sweep.Warm}
	front, err := rlcint.ParetoFront(g.ctx, m, 0.5, opts)
	if err != nil {
		return err
	}
	n := len(front)
	weights := make([]float64, n)
	delays := make([]float64, n)
	powers := make([]float64, n)
	dr := make([]float64, n)
	pr := make([]float64, n)
	fmt.Fprintf(g.w, "%10s %14s %14s %8s %8s\n", "lambda", "delay (ps/mm)", "power (mW/mm)", "D/D0", "P/P0")
	for i, p := range front {
		weights[i] = p.Weight
		delays[i] = p.Delay / (rlcint.PS / rlcint.MM)
		powers[i] = p.Power // W/m prints unchanged as mW/mm
		dr[i] = p.DelayRatio
		pr[i] = p.PowerRatio
		fmt.Fprintf(g.w, "%10.3f %14.2f %14.3f %8.4f %8.4f\n", weights[i], delays[i], powers[i], dr[i], pr[i])
	}
	plan, err := rlcint.PlanPowerCtx(g.ctx, rlcint.Tech100(), l, 0.5, 30*rlcint.MM, prm,
		rlcint.PowerPlanOptions{Front: opts})
	if err != nil {
		return err
	}
	fmt.Fprintf(g.w, "30 mm plan: %.2f%% power saved at %.2f%% delay penalty (%d scheme(s))\n",
		100*plan.PowerSaved, 100*plan.DelayPenalty, len(plan.Schemes))
	return g.csv("pareto.csv", weights,
		[]string{"delay_ps_mm", "power_mw_mm", "delay_ratio", "power_ratio"},
		delays, powers, dr, pr)
}

// valid cross-checks the two-pole model against higher-order AWE fits and
// reports the Newton iteration counts the paper quotes.
func (g *gen) valid() error {
	fmt.Fprintln(g.w, "== Validation: two-pole model vs higher-order AWE ==")
	fmt.Fprintf(g.w, "%-10s %14s %14s %10s %8s\n", "l (nH/mm)", "2-pole (ps)", "AWE q=6 (ps)", "rel err", "iters")
	for _, l := range []float64{0.5e-6, 1e-6, 2e-6, 3e-6, 4e-6} {
		st := rlcint.StageOf(rlcint.Tech100(), l, 11.1*rlcint.MM, 528)
		m, err := rlcint.TwoPoleOf(st)
		if err != nil {
			return err
		}
		d, err := m.Delay(0.5)
		if err != nil {
			return err
		}
		// High-order AWE fits are occasionally unstable (its classic
		// failure mode); fall back to the highest stable order.
		ref := math.NaN()
		order := 0
		for q := 6; q >= 3; q-- {
			fit, err := awe.FromStage(st, q)
			if err != nil || !fit.Stable() {
				continue
			}
			if ref, err = fit.Delay(0.5); err == nil {
				order = q
				break
			}
		}
		rel := math.Abs(d.Tau-ref) / ref
		fmt.Fprintf(g.w, "%-10.1f %14.1f %11.1f q=%d %9.1f%% %8d\n",
			l/rlcint.NHPerMM, d.Tau/rlcint.PS, ref/rlcint.PS, order, 100*rel, d.Iterations)
	}
	return nil
}
