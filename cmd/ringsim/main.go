// Command ringsim runs the paper's five-stage ring-oscillator transient for
// one configuration and dumps the monitored waveforms as CSV (the raw data
// behind Figures 9, 10 and 12), along with the reliability screens of
// Section 3.3.2.
//
// Usage:
//
//	ringsim [-tech 100nm] [-l 1.8] [-stages 5] [-sections 16] [-buffered] [-o ring.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"rlcint"
	"rlcint/internal/waveform"
)

func main() {
	techName := flag.String("tech", "100nm", "technology node")
	lNH := flag.Float64("l", 1.8, "line inductance, nH/mm")
	stages := flag.Int("stages", 5, "number of stages (odd)")
	sections := flag.Int("sections", 16, "ladder sections per line")
	buffered := flag.Bool("buffered", false, "simulate the square-wave-driven buffered line instead of the ring")
	outPath := flag.String("o", "ring.csv", "waveform CSV output path")
	flag.Parse()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	cfg := rlcint.RingConfig{
		Node: t, LineL: *lNH * rlcint.NHPerMM,
		Stages: *stages, Sections: *sections,
	}
	run := rlcint.RunRing
	kind := "ring oscillator"
	if *buffered {
		run = rlcint.RunBufferedLine
		kind = "buffered line"
	}
	w, met, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s, %s, l=%.2f nH/mm, %d stages\n", kind, t.Name, *lNH, *stages)
	fmt.Printf("period:      %.3f ns\n", met.Period*1e9)
	fmt.Printf("overshoot:   %.3f V above VDD=%.2f\n", met.Overshoot, t.VDD)
	fmt.Printf("undershoot:  %.3f V below ground\n", met.Undershoot)
	if w.ILine != nil {
		fmt.Printf("line current: peak %.3f mA, rms %.3f mA\n", met.PeakI*1e3, met.RMSI*1e3)
		fmt.Printf("current density: peak %.3f MA/cm², rms %.3f MA/cm²\n", met.PeakJ/1e10, met.RMSJ/1e10)
		wire, err := rlcint.CheckWire(met.PeakJ, met.RMSJ)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("EM/Joule screen: rms margin %.3f, peak margin %.3f (pass=%v)\n",
			wire.RMSMargin, wire.PeakMargin, !wire.RMSOver && !wire.PeakOver)
	}
	ox, err := rlcint.CheckOxide(t, met.Overshoot)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("oxide field: %.2f MV/cm nominal, %.2f MV/cm with overshoot (over-limit=%v critical=%v)\n",
		ox.FieldVDD/1e8, ox.Field/1e8, ox.OverLimit, ox.Critical)

	f, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	names := []string{"vin", "vout"}
	series := [][]float64{w.VIn, w.VOut}
	if w.ILine != nil {
		names = append(names, "iline")
		series = append(series, w.ILine)
	}
	if err := waveform.WriteCSV(f, w.T, names, series...); err != nil {
		fatal(err)
	}
	fmt.Printf("waveforms written to %s (%d samples)\n", *outPath, len(w.T))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ringsim:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
