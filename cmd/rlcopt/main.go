// Command rlcopt optimizes repeater insertion for a distributed RLC
// interconnect and prints the solution alongside the Elmore (RC) optimum
// and the Ismail–Friedman curve-fitted baseline.
//
// Usage:
//
//	rlcopt [-tech 100nm] [-l 2.0] [-f 0.5] [-length 0] [-timeout 30s]
//	rlcopt -power [-alpha 0.15] [-freq 1.0] [-points 9] [-length 30] [-max-penalty 0.05]
//
// -l is the line inductance in nH/mm; -length (mm), when nonzero, also
// reports the total delay of a line of that length. ^C or -timeout stop
// the optimizer cooperatively with a typed run-control error.
//
// -power switches to the power-aware mode: it traces the delay/power
// Pareto front of the buffered line under the given switching activity
// (-alpha) and clock frequency (-freq, GHz), and — when -length is set —
// prints the mixed-scheme power plan whose end-to-end delay stays within
// -max-penalty of the delay optimum.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rlcint"
	"rlcint/internal/core"
)

func main() {
	techName := flag.String("tech", "100nm", "technology node: 250nm, 100nm, 100nm-eps250")
	lNH := flag.Float64("l", 2.0, "line inductance, nH/mm")
	f := flag.Float64("f", 0.5, "delay threshold fraction (0,1)")
	lengthMM := flag.Float64("length", 0, "total line length to report, mm (0 = skip)")
	diagFlag := flag.Bool("diag", false, "print the optimizer's recovery-ladder report")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the optimization (0 = none)")
	powerMode := flag.Bool("power", false, "power-aware mode: Pareto front and mixed-scheme plan")
	alpha := flag.Float64("alpha", 0.15, "switching activity factor (power mode)")
	freqGHz := flag.Float64("freq", 1.0, "clock frequency, GHz (power mode)")
	points := flag.Int("points", 9, "Pareto-front points to trace (power mode)")
	maxPenalty := flag.Float64("max-penalty", 0.05, "delay-penalty budget for the power plan")
	workers := flag.Int("workers", 0, "front-trace worker pool (0 = GOMAXPROCS; result is identical)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	l := *lNH * rlcint.NHPerMM

	if *powerMode {
		runPower(ctx, t, l, *f, *alpha, *freqGHz, *lengthMM, *maxPenalty, *points, *workers, *timeout)
		return
	}

	rc, err := rlcint.OptimizeRC(t)
	if err != nil {
		fatal(err)
	}
	var rep *rlcint.DiagReport
	if *diagFlag {
		rep = &rlcint.DiagReport{}
	}
	opt, err := core.OptimizeCtx(ctx, core.Problem{
		Device: rlcint.DeviceOf(t), Line: rlcint.LineOf(t, l), F: *f,
		Report: rep, Limits: rlcint.RunLimits{Timeout: *timeout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcopt:", rlcint.DiagString(err, rep))
		if rlcint.IsRunStop(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	ifo, err := rlcint.OptimizeIF(t, l)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("technology %s: r=%.1f Ω/mm c=%.1f pF/m l=%.2f nH/mm f=%.0f%%\n",
		t.Name, t.R/rlcint.OhmPerMM, t.C/rlcint.PFPerM, *lNH, 100**f)
	fmt.Printf("%-22s %12s %10s %14s\n", "method", "h (mm)", "k", "tau/h (ps/mm)")
	fmt.Printf("%-22s %12.2f %10.0f %14.2f\n", "Elmore (RC closed form)",
		rc.H/rlcint.MM, rc.K, rc.Tau/rc.H/(rlcint.PS/rlcint.MM))
	fmt.Printf("%-22s %12.2f %10.0f %14.2f\n", "this work (RLC)",
		opt.H/rlcint.MM, opt.K, opt.PerUnit/(rlcint.PS/rlcint.MM))
	fmt.Printf("%-22s %12.2f %10.0f %14s\n", "Ismail-Friedman fit",
		ifo.H/rlcint.MM, ifo.K, "-")
	fmt.Printf("optimizer path: %s (%d iterations); damping at optimum: %v\n",
		opt.Method, opt.Iterations, opt.Model.Damping())
	if rep != nil {
		fmt.Printf("recovery ladder:\n%s\n", rep.Summary())
	}

	st := rlcint.StageOf(t, l, opt.H, opt.K)
	fmt.Printf("critical inductance at the optimum: %.3f nH/mm\n", rlcint.LCrit(st)/rlcint.NHPerMM)

	if *lengthMM > 0 {
		total := *lengthMM * rlcint.MM / opt.H * opt.Tau
		n := *lengthMM * rlcint.MM / opt.H
		fmt.Printf("line of %.1f mm: %.1f repeaters, total %.0f ps\n",
			*lengthMM, n, total/rlcint.PS)
	}
}

// runPower traces the delay/power Pareto front and, when lengthMM > 0,
// prints the mixed-scheme plan for a net of that length. Per-unit power in
// W/m prints unchanged as mW/mm.
func runPower(ctx context.Context, t rlcint.Technology, l, f, alpha, freqGHz, lengthMM, maxPenalty float64, points, workers int, timeout time.Duration) {
	prm := rlcint.PowerParams{Alpha: alpha, Freq: freqGHz * 1e9}
	m, err := rlcint.NewPowerModel(t, l, prm)
	if err != nil {
		fatal(err)
	}
	opts := rlcint.ParetoOptions{
		Points: points, Workers: workers,
		Limits: rlcint.RunLimits{Timeout: timeout},
	}
	front, err := rlcint.ParetoFront(ctx, m, f, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("technology %s: alpha=%.2f freq=%.2f GHz f=%.0f%%\n",
		t.Name, alpha, freqGHz, 100*f)
	fmt.Printf("delay/power Pareto front (%d points):\n", len(front))
	fmt.Printf("%10s %10s %8s %14s %14s %8s %8s\n",
		"lambda", "h (mm)", "k", "delay (ps/mm)", "power (mW/mm)", "D/D0", "P/P0")
	for _, p := range front {
		fmt.Printf("%10.3f %10.3f %8.1f %14.2f %14.3f %8.4f %8.4f\n",
			p.Weight, p.H/rlcint.MM, p.K,
			p.Delay/(rlcint.PS/rlcint.MM), p.Power,
			p.DelayRatio, p.PowerRatio)
	}

	if lengthMM <= 0 {
		return
	}
	plan, err := rlcint.PlanPowerCtx(ctx, t, l, f, lengthMM*rlcint.MM, prm,
		rlcint.PowerPlanOptions{MaxPenalty: maxPenalty, Front: opts})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\npower plan for %.1f mm (penalty budget %.1f%%):\n", lengthMM, 100*maxPenalty)
	for i, s := range plan.Schemes {
		fmt.Printf("  scheme %d: %3d stages of h=%.3f mm, k=%.1f (%.3f mW/stage)\n",
			i+1, s.Stages, s.H/rlcint.MM, s.K, s.Stage.Total()*1e3)
	}
	fmt.Printf("  delay %.0f ps (baseline %.0f ps, penalty %.2f%%)\n",
		plan.Delay/rlcint.PS, plan.Baseline.Total/rlcint.PS, 100*plan.DelayPenalty)
	fmt.Printf("  power %.3f mW (baseline %.3f mW, saved %.2f%%)\n",
		plan.Power*1e3, plan.BaselinePower*1e3, 100*plan.PowerSaved)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlcopt:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
