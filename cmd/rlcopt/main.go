// Command rlcopt optimizes repeater insertion for a distributed RLC
// interconnect and prints the solution alongside the Elmore (RC) optimum
// and the Ismail–Friedman curve-fitted baseline.
//
// Usage:
//
//	rlcopt [-tech 100nm] [-l 2.0] [-f 0.5] [-length 0] [-timeout 30s]
//
// -l is the line inductance in nH/mm; -length (mm), when nonzero, also
// reports the total delay of a line of that length. ^C or -timeout stop
// the optimizer cooperatively with a typed run-control error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rlcint"
	"rlcint/internal/core"
)

func main() {
	techName := flag.String("tech", "100nm", "technology node: 250nm, 100nm, 100nm-eps250")
	lNH := flag.Float64("l", 2.0, "line inductance, nH/mm")
	f := flag.Float64("f", 0.5, "delay threshold fraction (0,1)")
	lengthMM := flag.Float64("length", 0, "total line length to report, mm (0 = skip)")
	diagFlag := flag.Bool("diag", false, "print the optimizer's recovery-ladder report")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the optimization (0 = none)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	l := *lNH * rlcint.NHPerMM

	rc, err := rlcint.OptimizeRC(t)
	if err != nil {
		fatal(err)
	}
	var rep *rlcint.DiagReport
	if *diagFlag {
		rep = &rlcint.DiagReport{}
	}
	opt, err := core.OptimizeCtx(ctx, core.Problem{
		Device: rlcint.DeviceOf(t), Line: rlcint.LineOf(t, l), F: *f,
		Report: rep, Limits: rlcint.RunLimits{Timeout: *timeout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rlcopt:", rlcint.DiagString(err, rep))
		if rlcint.IsRunStop(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	ifo, err := rlcint.OptimizeIF(t, l)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("technology %s: r=%.1f Ω/mm c=%.1f pF/m l=%.2f nH/mm f=%.0f%%\n",
		t.Name, t.R/rlcint.OhmPerMM, t.C/rlcint.PFPerM, *lNH, 100**f)
	fmt.Printf("%-22s %12s %10s %14s\n", "method", "h (mm)", "k", "tau/h (ps/mm)")
	fmt.Printf("%-22s %12.2f %10.0f %14.2f\n", "Elmore (RC closed form)",
		rc.H/rlcint.MM, rc.K, rc.Tau/rc.H/(rlcint.PS/rlcint.MM))
	fmt.Printf("%-22s %12.2f %10.0f %14.2f\n", "this work (RLC)",
		opt.H/rlcint.MM, opt.K, opt.PerUnit/(rlcint.PS/rlcint.MM))
	fmt.Printf("%-22s %12.2f %10.0f %14s\n", "Ismail-Friedman fit",
		ifo.H/rlcint.MM, ifo.K, "-")
	fmt.Printf("optimizer path: %s (%d iterations); damping at optimum: %v\n",
		opt.Method, opt.Iterations, opt.Model.Damping())
	if rep != nil {
		fmt.Printf("recovery ladder:\n%s\n", rep.Summary())
	}

	st := rlcint.StageOf(t, l, opt.H, opt.K)
	fmt.Printf("critical inductance at the optimum: %.3f nH/mm\n", rlcint.LCrit(st)/rlcint.NHPerMM)

	if *lengthMM > 0 {
		total := *lengthMM * rlcint.MM / opt.H * opt.Tau
		n := *lengthMM * rlcint.MM / opt.H
		fmt.Printf("line of %.1f mm: %.1f repeaters, total %.0f ps\n",
			*lengthMM, n, total/rlcint.PS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rlcopt:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
