// Command sweep runs one-dimensional parameter sweeps of the RLC
// repeater-insertion machinery and prints CSV to stdout (or -o). The swept
// variable is one of:
//
//	l   line inductance (nH/mm)      — optimizes (h, k) at each point
//	h   segment length (mm)          — fixed k, reports stage delay
//	k   repeater size                — fixed h, reports stage delay
//	f   delay threshold (fraction)   — optimizes at each point
//
// Usage:
//
//	sweep -var l -from 0.1 -to 4.9 -steps 13 [-tech 100nm] [-l 2] [-h 11.1] [-k 528] [-f 0.5]
//	      [-workers 4] [-timeout 30s] [-warm] [-o out.csv]
//
// Points are evaluated over a bounded worker pool and rows stream to the
// output in sweep order as soon as each point (and all before it) is done,
// so a run stopped by ^C or -timeout keeps every completed row.
//
// The l sweep runs through the batched sweep engine; -warm additionally
// enables Newton warm-start continuation between neighboring points (several
// times faster; per-unit delays agree with the cold engine to ≤1e-12
// relative, h/k to the stationarity tolerance). The h, k, and f sweeps are
// fixed-design or threshold scans and stay on the streaming pool.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rlcint"
	"rlcint/internal/num"
	"rlcint/internal/runctl"
)

func main() {
	variable := flag.String("var", "l", "swept variable: l, h, k, f")
	from := flag.Float64("from", 0.1, "sweep start")
	to := flag.Float64("to", 4.9, "sweep end")
	steps := flag.Int("steps", 13, "number of points")
	techName := flag.String("tech", "100nm", "technology node")
	lNH := flag.Float64("l", 2, "fixed line inductance, nH/mm")
	hMM := flag.Float64("h", 11.1, "fixed segment length, mm")
	k := flag.Float64("k", 528, "fixed repeater size")
	f := flag.Float64("f", 0.5, "fixed delay threshold")
	workers := flag.Int("workers", 1, "parallel point evaluations")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the sweep (0 = none)")
	warm := flag.Bool("warm", false, "warm-start continuation for the l sweep")
	outPath := flag.String("o", "", "output CSV (default stdout)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	pts := num.Linspace(*from, *to, *steps)

	// The l sweep (one optimization per point) runs through the batched
	// sweep engine — cold by default (bit-identical to the streaming serial
	// path), warm-start continuation with -warm. The remaining variants
	// reduce to a header plus one row function on the streaming pool.
	var header string
	var row func(x float64) (string, error)
	switch *variable {
	case "l":
		runLSweep(ctx, t, pts, *f, rlcint.SweepOptions{
			Workers: *workers,
			Warm:    *warm,
			Limits:  rlcint.RunLimits{Timeout: *timeout},
		}, *outPath)
		return
	case "h":
		header = "h_mm,tau_ps,tau_per_mm_ps,lcrit_nH_mm"
		row = func(x float64) (string, error) {
			st := rlcint.StageOf(t, *lNH*rlcint.NHPerMM, x*rlcint.MM, *k)
			tau, err := rlcint.Delay(st, *f)
			if err != nil {
				return "", wrapPoint("h", x, err)
			}
			return fmt.Sprintf("%g,%.4f,%.4f,%.4f", x, tau/rlcint.PS,
				tau/(x*rlcint.MM)*rlcint.MM/rlcint.PS, rlcint.LCrit(st)/rlcint.NHPerMM), nil
		}
	case "k":
		header = "k,tau_ps,lcrit_nH_mm"
		row = func(x float64) (string, error) {
			st := rlcint.StageOf(t, *lNH*rlcint.NHPerMM, *hMM*rlcint.MM, x)
			tau, err := rlcint.Delay(st, *f)
			if err != nil {
				return "", wrapPoint("k", x, err)
			}
			return fmt.Sprintf("%g,%.4f,%.4f", x, tau/rlcint.PS, rlcint.LCrit(st)/rlcint.NHPerMM), nil
		}
	case "f":
		header = "f,h_opt_mm,k_opt,tau_per_mm_ps"
		row = func(x float64) (string, error) {
			if x <= 0 || x >= 1 {
				return "", fmt.Errorf("threshold %v outside (0,1)", x)
			}
			opt, err := rlcint.OptimizeCtx(ctx, t, *lNH*rlcint.NHPerMM, x, rlcint.RunLimits{})
			if err != nil {
				return "", wrapPoint("f", x, err)
			}
			return fmt.Sprintf("%g,%.4f,%.1f,%.4f", x, opt.H/rlcint.MM, opt.K,
				opt.PerUnit*rlcint.MM/rlcint.PS), nil
		}
	default:
		fatal(fmt.Errorf("unknown variable %q (want l, h, k or f)", *variable))
	}

	w, closeOut := openOut(*outPath)
	defer closeOut()
	fmt.Fprintln(w, header)
	w.Flush()

	ctl := runctl.New(ctx, rlcint.RunLimits{Timeout: *timeout})
	done := 0
	err = runctl.Stream(ctl, *workers, len(pts),
		func(i int) (string, error) { return row(pts[i]) },
		func(i int, line string) error {
			// Rows flush as they complete, in order, so an interrupted sweep
			// leaves a valid CSV prefix behind.
			fmt.Fprintln(w, line)
			done++
			return w.Flush()
		})
	if err != nil {
		if runctl.IsStop(err) {
			fmt.Fprintf(os.Stderr, "sweep: stopped after %d/%d points: %v\n", done, len(pts), err)
			os.Exit(2)
		}
		fatal(err)
	}
}

// runLSweep evaluates the inductance sweep through the batched engine and
// writes the completed prefix of rows even when the run is stopped by ^C or
// -timeout (exit status 2, like the streaming variants).
func runLSweep(ctx context.Context, t rlcint.Technology, pts []float64, f float64, opts rlcint.SweepOptions, outPath string) {
	ls := make([]float64, len(pts))
	for i, x := range pts {
		ls[i] = x * rlcint.NHPerMM
	}
	sps, err := rlcint.SweepBatch(ctx, opts, t, ls, f)
	w, closeOut := openOut(outPath)
	defer closeOut()
	fmt.Fprintln(w, "l_nH_mm,h_opt_mm,k_opt,tau_per_mm_ps,damping")
	for i, sp := range sps {
		fmt.Fprintf(w, "%g,%.4f,%.1f,%.4f,%s\n", pts[i], sp.Opt.H/rlcint.MM, sp.Opt.K,
			sp.Opt.PerUnit*rlcint.MM/rlcint.PS, sp.Opt.Model.Damping())
	}
	w.Flush()
	if err != nil {
		if rlcint.IsRunStop(err) {
			fmt.Fprintf(os.Stderr, "sweep: stopped after %d/%d points: %v\n", len(sps), len(pts), err)
			os.Exit(2)
		}
		fatal(err)
	}
}

// openOut returns a buffered writer on path (stdout when empty) plus its
// cleanup function.
func openOut(path string) (*bufio.Writer, func()) {
	cleanup := func() {}
	out := os.Stdout
	if path != "" {
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		out, cleanup = fh, func() { fh.Close() }
	}
	return bufio.NewWriter(out), cleanup
}

func wrapPoint(name string, x float64, err error) error {
	if rlcint.IsRunStop(err) {
		return err // keep stops matchable for the pool's short-circuit
	}
	return fmt.Errorf("%s=%v: %w", name, x, err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
