// Command sweep runs one-dimensional parameter sweeps of the RLC
// repeater-insertion machinery and prints CSV to stdout. The swept variable
// is one of:
//
//	l   line inductance (nH/mm)      — optimizes (h, k) at each point
//	h   segment length (mm)          — fixed k, reports stage delay
//	k   repeater size                — fixed h, reports stage delay
//	f   delay threshold (fraction)   — optimizes at each point
//
// Usage:
//
//	sweep -var l -from 0.1 -to 4.9 -steps 13 [-tech 100nm] [-l 2] [-h 11.1] [-k 528] [-f 0.5]
package main

import (
	"flag"
	"fmt"
	"os"

	"rlcint"
	"rlcint/internal/num"
)

func main() {
	variable := flag.String("var", "l", "swept variable: l, h, k, f")
	from := flag.Float64("from", 0.1, "sweep start")
	to := flag.Float64("to", 4.9, "sweep end")
	steps := flag.Int("steps", 13, "number of points")
	techName := flag.String("tech", "100nm", "technology node")
	lNH := flag.Float64("l", 2, "fixed line inductance, nH/mm")
	hMM := flag.Float64("h", 11.1, "fixed segment length, mm")
	k := flag.Float64("k", 528, "fixed repeater size")
	f := flag.Float64("f", 0.5, "fixed delay threshold")
	flag.Parse()

	t, err := rlcint.TechByName(*techName)
	if err != nil {
		fatal(err)
	}
	pts := num.Linspace(*from, *to, *steps)

	switch *variable {
	case "l":
		fmt.Println("l_nH_mm,h_opt_mm,k_opt,tau_per_mm_ps,damping")
		for _, x := range pts {
			opt, err := rlcint.Optimize(t, x*rlcint.NHPerMM, *f)
			if err != nil {
				fatal(fmt.Errorf("l=%v: %w", x, err))
			}
			fmt.Printf("%g,%.4f,%.1f,%.4f,%s\n", x, opt.H/rlcint.MM, opt.K,
				opt.PerUnit*rlcint.MM/rlcint.PS, opt.Model.Damping())
		}
	case "h":
		fmt.Println("h_mm,tau_ps,tau_per_mm_ps,lcrit_nH_mm")
		for _, x := range pts {
			st := rlcint.StageOf(t, *lNH*rlcint.NHPerMM, x*rlcint.MM, *k)
			tau, err := rlcint.Delay(st, *f)
			if err != nil {
				fatal(fmt.Errorf("h=%v: %w", x, err))
			}
			fmt.Printf("%g,%.4f,%.4f,%.4f\n", x, tau/rlcint.PS,
				tau/(x*rlcint.MM)*rlcint.MM/rlcint.PS, rlcint.LCrit(st)/rlcint.NHPerMM)
		}
	case "k":
		fmt.Println("k,tau_ps,lcrit_nH_mm")
		for _, x := range pts {
			st := rlcint.StageOf(t, *lNH*rlcint.NHPerMM, *hMM*rlcint.MM, x)
			tau, err := rlcint.Delay(st, *f)
			if err != nil {
				fatal(fmt.Errorf("k=%v: %w", x, err))
			}
			fmt.Printf("%g,%.4f,%.4f\n", x, tau/rlcint.PS, rlcint.LCrit(st)/rlcint.NHPerMM)
		}
	case "f":
		fmt.Println("f,h_opt_mm,k_opt,tau_per_mm_ps")
		for _, x := range pts {
			if x <= 0 || x >= 1 {
				fatal(fmt.Errorf("threshold %v outside (0,1)", x))
			}
			opt, err := rlcint.Optimize(t, *lNH*rlcint.NHPerMM, x)
			if err != nil {
				fatal(fmt.Errorf("f=%v: %w", x, err))
			}
			fmt.Printf("%g,%.4f,%.1f,%.4f\n", x, opt.H/rlcint.MM, opt.K,
				opt.PerUnit*rlcint.MM/rlcint.PS)
		}
	default:
		fatal(fmt.Errorf("unknown variable %q (want l, h, k or f)", *variable))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", rlcint.DiagString(err, nil))
	os.Exit(1)
}
