// Command pdn builds a parameterized on-chip power-delivery-network mesh and
// runs one of its two analyses: a DC IR-drop solve (-mode ir) or an AC
// impedance-profile sweep at a probe node (-mode impedance). Large meshes
// route through the sparse engine's fill-reducing ordering and
// preconditioned iterative solvers automatically, so grids of 10⁵ nodes
// solve in seconds.
//
// Usage:
//
//	pdn -nx 100 -ny 100 [-tech 100nm] [-pitch 0.1] [-mode ir]
//	    [-bumps 4x4] [-hot 50,50] [-iload 0.1m] [-ihot 50m]
//	    [-fstart 100k] [-fstop 1g] [-points 60] [-probe 50,50] [-workers 8]
//	    [-o out] [-json] [-timeout 30s] [-diag]
//
// Electrical value flags accept SPICE suffixes (100k, 1g, 0.1m). IR output
// is a text summary (or the full JSON result with -json); impedance output
// is CSV (f_hz, z_ohm) or JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rlcint/internal/pdn"
	"rlcint/internal/runctl"
	"rlcint/internal/sparse"
	"rlcint/internal/spice"
)

func main() {
	nx := flag.Int("nx", 0, "grid nodes per row (required)")
	ny := flag.Int("ny", 0, "grid rows (required)")
	techName := flag.String("tech", "", "technology node (default 100nm)")
	pitch := flag.Float64("pitch", 0, "grid pitch in mm (default 0.1)")
	lperm := flag.String("lperm", "", "per-length inductance override, H/m (e.g. 5u)")
	bumps := flag.String("bumps", "", "C4 bump array as NXxNY (default 4x4)")
	rbump := flag.String("rbump", "", "per-bump resistance, Ω (default 40m)")
	lbump := flag.String("lbump", "", "per-bump inductance, H (default 72p)")
	cnode := flag.String("cnode", "", "per-node decap override, F")
	iload := flag.String("iload", "", "per-node load current, A (default 0.1m)")
	ihot := flag.String("ihot", "", "extra hotspot current, A (default 50m)")
	hot := flag.String("hot", "", "hotspot grid location as X,Y (default center)")
	vdd := flag.Float64("vdd", 0, "supply voltage override, V")

	mode := flag.String("mode", "ir", "analysis: ir | impedance")
	fstart := flag.String("fstart", "", "impedance sweep start frequency, Hz (default 100k)")
	fstop := flag.String("fstop", "", "impedance sweep stop frequency, Hz (default 1g)")
	points := flag.Int("points", 0, "impedance sweep points (default 60)")
	probe := flag.String("probe", "", "impedance probe location as X,Y (default hotspot)")
	workers := flag.Int("workers", 0, "sweep workers (default GOMAXPROCS)")

	outPath := flag.String("o", "", "output file (default stdout)")
	asJSON := flag.Bool("json", false, "emit JSON instead of text/CSV")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	diagOut := flag.Bool("diag", false, "print solver diagnostics to stderr")
	flag.Parse()

	spec := pdn.Spec{
		NX: *nx, NY: *ny, Tech: *techName, PitchMM: *pitch, VDD: *vdd,
	}
	spec.LPerM = parseVal("lperm", *lperm)
	spec.RBump = parseVal("rbump", *rbump)
	spec.LBump = parseVal("lbump", *lbump)
	spec.CNode = parseVal("cnode", *cnode)
	spec.ILoad = parseVal("iload", *iload)
	spec.IHot = parseVal("ihot", *ihot)
	if *bumps != "" {
		spec.BumpNX, spec.BumpNY = parsePair("bumps", *bumps, "x")
	}
	if *hot != "" {
		spec.HotX, spec.HotY = parsePair("hot", *hot, ",")
	}

	m, err := pdn.Build(spec)
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}

	switch *mode {
	case "ir":
		runIR(m, out, *asJSON, *diagOut)
	case "impedance", "imp":
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		o := pdn.ImpedanceOpts{
			FStart:  parseVal("fstart", *fstart),
			FStop:   parseVal("fstop", *fstop),
			Points:  *points,
			Workers: *workers,
		}
		if *probe != "" {
			o.ProbeX, o.ProbeY = parsePair("probe", *probe, ",")
		}
		runImpedance(ctx, m, o, *timeout, out, *asJSON, *diagOut)
	default:
		fatal(fmt.Errorf("unknown -mode %q (want ir or impedance)", *mode))
	}
}

func runIR(m *pdn.Mesh, out io.Writer, asJSON, diagOut bool) {
	start := time.Now()
	res, err := m.SolveIR()
	if err != nil {
		fatal(err)
	}
	if diagOut {
		printSolverDiag(res.Solver, time.Since(start))
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	s := m.Spec
	fmt.Fprintf(out, "PDN %dx%d (%d nodes), tech %s, pitch %g mm, %d bumps\n",
		s.NX, s.NY, m.N, s.Tech, s.PitchMM, len(m.Bumps()))
	fmt.Fprintf(out, "VDD        %8.4f V\n", res.VDD)
	fmt.Fprintf(out, "worst node %8.4f V at (%d,%d)  drop %.2f mV\n",
		res.VMin, res.WorstX, res.WorstY, res.WorstDrop*1e3)
	fmt.Fprintf(out, "best node  %8.4f V            drop %.2f mV\n",
		res.VMax, (res.VDD-res.VMax)*1e3)
	fmt.Fprintf(out, "avg drop   %8.2f mV\n", res.AvgDrop*1e3)
}

func runImpedance(ctx context.Context, m *pdn.Mesh, o pdn.ImpedanceOpts,
	timeout time.Duration, out io.Writer, asJSON, diagOut bool) {
	ctl := runctl.New(ctx, runctl.Limits{Timeout: timeout})
	start := time.Now()
	res, err := m.ImpedanceProfile(ctl, o)
	if err != nil {
		fatal(err)
	}
	if diagOut {
		fmt.Fprintf(os.Stderr, "pdn: %d frequency points in %s; peak |Z| = %.4g Ω at %.4g Hz\n",
			len(res.Points), time.Since(start).Round(time.Millisecond), res.Peak.Z, res.Peak.F)
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Fprintln(out, "f_hz,z_ohm")
	for _, p := range res.Points {
		fmt.Fprintf(out, "%g,%g\n", p.F, p.Z)
	}
}

func printSolverDiag(st sparse.EngineStats, elapsed time.Duration) {
	fmt.Fprintf(os.Stderr, "pdn: solver=%s policy=%s iters=%d residual=%.3g fallbacks=%d in %s\n",
		st.Solver, st.Policy, st.Iterations, st.Residual, st.Fallbacks,
		elapsed.Round(time.Millisecond))
	if st.Factor.N > 0 {
		fmt.Fprintf(os.Stderr, "pdn: factor n=%d nnz(A)=%d nnz(L+U)=%d fill=%.2fx ordering=%s\n",
			st.Factor.N, st.Factor.NNZ, st.Factor.NNZL+st.Factor.NNZU,
			st.Factor.FillRatio, st.Factor.Ordering)
	}
}

// parseVal parses a SPICE-suffixed value flag ("" → 0, meaning default).
func parseVal(name, s string) float64 {
	if s == "" {
		return 0
	}
	v, err := spice.ParseValue(s)
	if err != nil {
		fatal(fmt.Errorf("bad -%s: %w", name, err))
	}
	return v
}

// parsePair parses "AxB" / "A,B" style flags into two ints.
func parsePair(name, s, sep string) (int, int) {
	parts := strings.SplitN(strings.ToLower(s), sep, 2)
	var a, b int
	if len(parts) == 2 {
		_, err1 := fmt.Sscanf(parts[0], "%d", &a)
		_, err2 := fmt.Sscanf(parts[1], "%d", &b)
		if err1 == nil && err2 == nil {
			return a, b
		}
	}
	fatal(fmt.Errorf("bad -%s %q (want two integers separated by %q)", name, s, sep))
	return 0, 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdn:", err)
	os.Exit(1)
}
