// Command spicesim loads a SPICE-style netlist (R, C, L, V, I elements with
// DC/PULSE/PWL/SIN sources), runs the library's transient engine, and dumps
// the requested node voltages as CSV — a standalone front end for the
// simulator that substitutes for the paper's commercial SPICE runs.
//
// Usage:
//
//	spicesim -i deck.cir [-tstop 10n] [-dt 10p] [-probe out,mid] [-o wave.csv] [-ic]
//
// The window may come from the deck's ".tran <dt> <tstop>" directive instead
// of the flags.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"rlcint/internal/diag"
	"rlcint/internal/spice"
	"rlcint/internal/waveform"
)

func main() {
	inPath := flag.String("i", "", "input netlist (default stdin)")
	outPath := flag.String("o", "", "output CSV (default stdout)")
	tstop := flag.String("tstop", "", "simulation end time, e.g. 10n")
	dt := flag.String("dt", "", "timestep, e.g. 10p")
	probes := flag.String("probe", "", "comma-separated node names (default: all nodes)")
	useICs := flag.Bool("ic", false, "start from zero/IC state instead of the DC operating point")
	be := flag.Bool("be", false, "use backward Euler instead of trapezoidal integration")
	flag.Parse()

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err, nil)
		}
		defer f.Close()
		in = f
	}
	parsed, err := spice.ParseNetlist(in)
	if err != nil {
		fatal(err, nil)
	}
	c := parsed.Circuit

	// The deck's .tran directive supplies the window unless overridden.
	var tStop, step float64
	if parsed.Tran != nil {
		step, tStop = parsed.Tran.DT, parsed.Tran.TStop
	}
	if *tstop != "" {
		if tStop, err = spice.ParseValue(*tstop); err != nil {
			fatal(fmt.Errorf("bad -tstop: %w", err), nil)
		}
	}
	if *dt != "" {
		if step, err = spice.ParseValue(*dt); err != nil {
			fatal(fmt.Errorf("bad -dt: %w", err), nil)
		}
	}
	if tStop <= 0 || step <= 0 {
		fatal(fmt.Errorf("no simulation window: use -tstop/-dt or a .tran directive"), nil)
	}

	var plist []spice.Probe
	if *probes == "" {
		for i := 0; i < c.NumNodes(); i++ {
			name := c.NodeName(spice.NodeID(i))
			plist = append(plist, spice.NodeProbe{Name: name, ID: spice.NodeID(i)})
		}
	} else {
		for _, name := range strings.Split(*probes, ",") {
			plist = append(plist, c.ProbeNode(strings.TrimSpace(name)))
		}
	}

	rep := &diag.Report{}
	opts := spice.TranOpts{TStop: tStop, DT: step, UseICs: *useICs, Report: rep}
	if *be {
		opts.Method = spice.BackwardEuler
	}
	res, err := c.Transient(opts, plist...)
	if err != nil {
		// A timestep collapse still returns the samples recorded before the
		// abort; write them so the waveform up to the failure is inspectable.
		if !errors.Is(err, diag.ErrTimestepCollapse) || res == nil {
			fatal(err, rep)
		}
		fmt.Fprintf(os.Stderr, "spicesim: %s\n", diag.Describe(err, rep))
		fmt.Fprintf(os.Stderr, "spicesim: writing partial waveform (%d samples up to t=%g)\n",
			len(res.T), res.PartialT)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err, nil)
		}
		defer f.Close()
		out = f
	}
	if err := waveform.WriteCSV(out, res.T, res.Labels, res.Signals...); err != nil {
		fatal(err, nil)
	}
	fmt.Fprintf(os.Stderr, "spicesim: %d nodes, %d samples, tstop=%g dt=%g\n",
		c.NumNodes(), len(res.T), tStop, step)
}

func fatal(err error, rep *diag.Report) {
	fmt.Fprintln(os.Stderr, "spicesim:", diag.Describe(err, rep))
	os.Exit(1)
}
