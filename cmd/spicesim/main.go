// Command spicesim loads a SPICE-style netlist (R, C, L, V, I elements with
// DC/PULSE/PWL/SIN sources), runs the library's transient engine, and dumps
// the requested node voltages as CSV — a standalone front end for the
// simulator that substitutes for the paper's commercial SPICE runs.
//
// Usage:
//
//	spicesim -i deck.cir [-tstop 10n] [-dt 10p] [-probe out,mid] [-o wave.csv] [-ic]
//	         [-timeout 30s] [-checkpoint run.ckpt [-every 64]] [-resume]
//
// The window may come from the deck's ".tran <dt> <tstop>" directive instead
// of the flags.
//
// Run control: SIGINT/SIGTERM (or -timeout) stop the solve cooperatively —
// the waveform recorded so far is still written, and when -checkpoint is
// set the last snapshot survives on disk, so re-running with -resume
// continues the run and produces a final waveform bit-identical to an
// uninterrupted one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rlcint/internal/diag"
	"rlcint/internal/runctl"
	"rlcint/internal/spice"
	"rlcint/internal/waveform"
)

func main() {
	inPath := flag.String("i", "", "input netlist (default stdin)")
	outPath := flag.String("o", "", "output CSV (default stdout)")
	tstop := flag.String("tstop", "", "simulation end time, e.g. 10n")
	dt := flag.String("dt", "", "timestep, e.g. 10p")
	probes := flag.String("probe", "", "comma-separated node names (default: all nodes)")
	useICs := flag.Bool("ic", false, "start from zero/IC state instead of the DC operating point")
	be := flag.Bool("be", false, "use backward Euler instead of trapezoidal integration")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the solve (0 = none)")
	ckpt := flag.String("checkpoint", "", "write resumable snapshots to this file")
	every := flag.Int("every", 0, "checkpoint cadence in output grid steps (default 64)")
	resume := flag.Bool("resume", false, "continue from the -checkpoint file instead of starting fresh")
	reduce := flag.Bool("reduce", true, "allow the Krylov reduced-order fast path for qualifying circuits")
	noReduction := flag.Bool("no-reduction", false, "force the full solver (equivalent to -reduce=false)")
	diagOut := flag.Bool("diag", false, "print solver diagnostics (factor shape, recovery ladder) to stderr")
	flag.Parse()

	// SIGINT/SIGTERM cancel the solver context; the solver unwinds within
	// one integration step and the partial waveform still gets written.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	in := os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err, nil)
		}
		defer f.Close()
		in = f
	}
	parsed, err := spice.ParseNetlist(in)
	if err != nil {
		fatal(err, nil)
	}
	c := parsed.Circuit

	// The deck's .tran directive supplies the window unless overridden.
	var tStop, step float64
	if parsed.Tran != nil {
		step, tStop = parsed.Tran.DT, parsed.Tran.TStop
	}
	if *tstop != "" {
		if tStop, err = spice.ParseValue(*tstop); err != nil {
			fatal(fmt.Errorf("bad -tstop: %w", err), nil)
		}
	}
	if *dt != "" {
		if step, err = spice.ParseValue(*dt); err != nil {
			fatal(fmt.Errorf("bad -dt: %w", err), nil)
		}
	}
	if tStop <= 0 || step <= 0 {
		fatal(fmt.Errorf("no simulation window: use -tstop/-dt or a .tran directive"), nil)
	}

	var plist []spice.Probe
	if *probes == "" {
		for i := 0; i < c.NumNodes(); i++ {
			name := c.NodeName(spice.NodeID(i))
			plist = append(plist, spice.NodeProbe{Name: name, ID: spice.NodeID(i)})
		}
	} else {
		for _, name := range strings.Split(*probes, ",") {
			plist = append(plist, c.ProbeNode(strings.TrimSpace(name)))
		}
	}

	rep := &diag.Report{}
	opts := spice.TranOpts{
		TStop: tStop, DT: step, UseICs: *useICs, Report: rep,
		Limits:          runctl.Limits{Timeout: *timeout},
		CheckpointPath:  *ckpt,
		CheckpointEvery: *every,
	}
	if *be {
		opts.Method = spice.BackwardEuler
	}
	opts.NoReduction = !*reduce || *noReduction
	var res *spice.Result
	stopped := false
	if *resume {
		if *ckpt == "" {
			fatal(fmt.Errorf("-resume requires -checkpoint"), nil)
		}
		cp, lerr := spice.LoadCheckpoint(*ckpt)
		if lerr != nil {
			fatal(lerr, nil)
		}
		fmt.Fprintf(os.Stderr, "spicesim: resuming from %s (step %d, t=%g)\n",
			*ckpt, cp.Step, float64(cp.Step)*cp.DT)
		res, err = c.TransientResumeCtx(ctx, cp, opts, plist...)
	} else {
		res, err = c.TransientCtx(ctx, opts, plist...)
	}
	if err != nil {
		// A timestep collapse or a run-control stop (SIGINT, -timeout) still
		// returns the samples recorded before the abort; write them so the
		// waveform up to the interruption is inspectable.
		stopped = runctl.IsStop(err)
		partial := errors.Is(err, diag.ErrTimestepCollapse) || stopped
		if !partial || res == nil {
			fatal(err, rep)
		}
		fmt.Fprintf(os.Stderr, "spicesim: %s\n", diag.Describe(err, rep))
		fmt.Fprintf(os.Stderr, "spicesim: writing partial waveform (%d samples up to t=%g)\n",
			len(res.T), res.PartialT)
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "spicesim: re-run with -resume to continue from %s\n", *ckpt)
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err, nil)
		}
		out = f
	}
	if err := waveform.WriteCSV(out, res.T, res.Labels, res.Signals...); err != nil {
		fatal(err, nil)
	}
	if out != os.Stdout {
		if err := out.Close(); err != nil {
			fatal(err, nil)
		}
	}
	fmt.Fprintf(os.Stderr, "spicesim: %d nodes, %d samples, tstop=%g dt=%g\n",
		c.NumNodes(), len(res.T), tStop, step)
	if *diagOut {
		if st := res.Factor; st.N > 0 {
			fmt.Fprintf(os.Stderr, "spicesim: factor n=%d nnz(A)=%d nnz(L+U)=%d fill=%.2fx ordering=%s\n",
				st.N, st.NNZ, st.NNZL+st.NNZU, st.FillRatio, st.Ordering)
		} else {
			fmt.Fprintln(os.Stderr, "spicesim: factor: none (reduced-order or linear-bypass run)")
		}
		if sum := rep.Summary(); sum != "" {
			fmt.Fprintf(os.Stderr, "spicesim: ladder:\n%s\n", sum)
		}
	}
	if stopped {
		os.Exit(2) // distinguishes an interrupted run from a failure
	}
}

func fatal(err error, rep *diag.Report) {
	fmt.Fprintln(os.Stderr, "spicesim:", diag.Describe(err, rep))
	os.Exit(1)
}
