// Failure demonstrates the paper's Section 3.3: catastrophic logic failure
// from inductive undershoot in a 100 nm ring oscillator (Figures 10–11),
// its absence at 250 nm, and the reliability screens for gate-oxide
// overstress and wire current density (Figure 12).
//
// This example runs transient circuit simulations and takes ~20 s.
package main

import (
	"fmt"
	"log"

	"rlcint"
)

func main() {
	fmt.Println("100 nm five-stage ring oscillator, RC-optimally sized repeaters")
	fmt.Printf("%-12s %12s %12s %12s %10s\n", "l (nH/mm)", "period (ns)", "under (V)", "over (V)", "status")

	var prevPeriod float64
	for _, lNH := range []float64{1.0, 1.8, 3.0} {
		_, met, err := rlcint.RunRing(rlcint.RingConfig{
			Node: rlcint.Tech100(), LineL: lNH * rlcint.NHPerMM,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Below the failure onset the period GROWS with l (inductance slows
		// the line); a drop against the previous point is the collapse
		// signature of Figure 11.
		status := "ok"
		if prevPeriod > 0 && met.Period < 0.8*prevPeriod {
			status = "FALSE SWITCHING"
		}
		prevPeriod = met.Period
		fmt.Printf("%-12.1f %12.3f %12.3f %12.3f %10s\n",
			lNH, met.Period*1e9, met.Undershoot, met.Overshoot, status)

		if lNH == 1.8 {
			// Reliability screens at the paper's Figure 9 operating point.
			ox, err := rlcint.CheckOxide(rlcint.Tech100(), met.Overshoot)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    gate oxide: %.1f MV/cm with overshoot (design limit 5, wear-out 7) critical=%v\n",
				ox.Field/1e8, ox.Critical)
			wire, err := rlcint.CheckWire(met.PeakJ, met.RMSJ)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    wire current: rms %.2f MA/cm² (%.1f%% of EM limit) -> wire reliability unaffected\n",
				met.RMSJ/1e10, 100*wire.RMSMargin)
		}
	}

	fmt.Println("\n250 nm control at the worst swept inductance:")
	_, met, err := rlcint.RunRing(rlcint.RingConfig{
		Node: rlcint.Tech250(), LineL: 4.9 * rlcint.NHPerMM,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("l = 4.9 nH/mm: period %.3f ns, undershoot %.3f V — no false switching\n",
		met.Period*1e9, met.Undershoot)
	fmt.Println("(matches the paper: only the 100 nm node fails for practical inductances)")
}
