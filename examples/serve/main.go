// Serve is the rlcd quickstart: it embeds the serving subsystem in-process,
// exercises the API the way a design-flow client would — an optimize, a
// cached repeat, a streamed sweep — and prints the cache/coalescing
// telemetry the daemon exposes on /metrics.
//
// Run the real daemon with:
//
//	go run ./cmd/rlcd -addr :8080
//	curl -s localhost:8080/v1/optimize -d '{"tech":"100nm","l":2e-6,"f":0.5}'
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"rlcint/internal/serve"
)

func post(client *http.Client, base, path, body string) (*http.Response, string) {
	resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return resp, string(b)
}

func main() {
	srv := serve.New(serve.Config{Logger: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// One optimize: the paper's methodology at (100nm, 2 nH/mm, 50%).
	req := `{"tech":"100nm","l":2e-6,"f":0.5}`
	resp, body := post(ts.Client(), ts.URL, "/v1/optimize", req)
	fmt.Printf("optimize  [%s]  %s", resp.Header.Get("X-Cache"), body)

	// The identical request again: served from the result cache.
	resp, body = post(ts.Client(), ts.URL, "/v1/optimize", req)
	fmt.Printf("optimize  [%s]  %s", resp.Header.Get("X-Cache"), body)

	// A sweep streams NDJSON: one line per grid point, then a "done" line.
	resp, body = post(ts.Client(), ts.URL, "/v1/sweep",
		`{"tech":"100nm","ls":[0,1e-6,2e-6,4e-6],"f":0.5,"warm":true}`)
	fmt.Printf("sweep     [%s]\n", resp.Header.Get("X-Cache"))
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		fmt.Println("  ", sc.Text())
	}

	// A domain error maps to a typed 400 with a JSON envelope.
	resp, body = post(ts.Client(), ts.URL, "/v1/optimize", `{"tech":"100nm","l":2e-6,"f":1.5}`)
	fmt.Printf("bad f     [%d]  %s", resp.StatusCode, body)

	// The telemetry a dashboard would scrape.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	m, _ := io.ReadAll(mresp.Body)
	fmt.Printf("metrics:\n%s", m)
}
