// Busdesign sizes the repeaters of a 30 mm, 64-bit global bus when neither
// the effective line capacitance (Miller coupling to switching neighbours)
// nor the line inductance (uncertain current-return path) is known at
// design time — the uncertainty scenario the paper's Section 3.2 motivates.
//
// The example extracts the capacitance corners from geometry, derives the
// inductance corners from plausible return-path distances, sizes the bus at
// the nominal corner, and then reports the worst-case delay degradation of
// that fixed design across all corners, compared against per-corner optimal
// designs.
package main

import (
	"fmt"
	"log"

	"rlcint"
	"rlcint/internal/core"
	"rlcint/internal/extract"
)

func main() {
	t := rlcint.Tech100()
	busLength := 30 * rlcint.MM
	bits := 64

	// --- Corner extraction from geometry ---------------------------------
	cg, cc, err := extract.CoupledCap(t.Width, t.Height, t.TIns, t.Spacing(), t.EpsR)
	if err != nil {
		log.Fatal(err)
	}
	cMin, cMax := extract.MillerRange(cg, cc)
	cNom := cg + 2*cc // neighbours quiet
	lCorners := map[string]float64{}
	for name, dist := range map[string]float64{
		"best (return at substrate)": t.TIns + t.Height,
		"nominal (return 100 µm)":    100 * rlcint.UM,
		"worst (return 1 mm)":        1000 * rlcint.UM,
	} {
		l, err := rlcint.ExtractLoopInductance(t.Width, t.Height, 11.1*rlcint.MM, dist)
		if err != nil {
			log.Fatal(err)
		}
		lCorners[name] = l
	}
	fmt.Printf("64-bit bus, %0.f mm, %s node\n", busLength/rlcint.MM, t.Name)
	fmt.Printf("extracted capacitance corners: %.0f / %.0f / %.0f pF/m (min/nom/max)\n",
		cMin/rlcint.PFPerM, cNom/rlcint.PFPerM, cMax/rlcint.PFPerM)
	for name, l := range lCorners {
		fmt.Printf("inductance corner %-28s %.2f nH/mm\n", name+":", l/rlcint.NHPerMM)
	}

	// --- Size at the nominal corner ---------------------------------------
	dev := rlcint.DeviceOf(t)
	nominal := core.Problem{Device: dev, Line: rlcint.Line{R: t.R, L: lCorners["nominal (return 100 µm)"], C: cNom}}
	nomOpt, err := core.Optimize(nominal)
	if err != nil {
		log.Fatal(err)
	}
	repeatersPerBit := busLength / nomOpt.H
	fmt.Printf("\nnominal design: h = %.2f mm, k = %.0f  (%.1f repeaters/bit, %d total)\n",
		nomOpt.H/rlcint.MM, nomOpt.K, repeatersPerBit, int(repeatersPerBit+0.5)*bits)

	// --- Evaluate the fixed design across corners --------------------------
	fmt.Printf("\n%-30s %-12s %14s %14s %9s\n", "corner", "c (pF/m)", "fixed (ps/mm)", "ideal (ps/mm)", "penalty")
	worst := 1.0
	for lName, l := range lCorners {
		for cName, c := range map[string]float64{"cmin": cMin, "cnom": cNom, "cmax": cMax} {
			p := core.Problem{Device: dev, Line: rlcint.Line{R: t.R, L: l, C: c}}
			fixedPU := p.PerUnitDelay(nomOpt.H, nomOpt.K)
			ideal, err := core.Optimize(p)
			if err != nil {
				log.Fatal(err)
			}
			pen := fixedPU / ideal.PerUnit
			if pen > worst {
				worst = pen
			}
			fmt.Printf("%-30s %-12.0f %14.2f %14.2f %8.1f%%\n",
				lName+"/"+cName, c/rlcint.PFPerM,
				fixedPU*rlcint.MM/rlcint.PS, ideal.PerUnit*rlcint.MM/rlcint.PS,
				100*(pen-1))
		}
	}
	fmt.Printf("\nworst-case penalty of the single nominal design: %.1f%%\n", 100*(worst-1))
	fmt.Println("(the paper's Figure 8 message: a fixed sizing is within ~12% of per-corner optimal,")
	fmt.Println(" so one robust design suffices — but only if it was sized with inductance in the loop)")
}
