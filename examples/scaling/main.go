// Scaling reproduces the paper's central scaling argument (Section 3.1 /
// Figure 7): as technology scales from 250 nm to 100 nm, designs become
// MORE susceptible to line inductance — and the cause is the shrinking
// driver (r_s·(c_0+c_p)), not the wire. The experiment re-runs the 100 nm
// sweep with the 250 nm dielectric (identical c) to isolate the cause.
package main

import (
	"fmt"
	"log"

	"rlcint"
)

func main() {
	ls := []float64{0.5, 1, 2, 3, 4, 4.9} // nH/mm
	lsSI := make([]float64, len(ls))
	for i, l := range ls {
		lsSI[i] = l * rlcint.NHPerMM
	}

	curves := map[string][]rlcint.SweepPoint{}
	for _, t := range []rlcint.Technology{rlcint.Tech250(), rlcint.Tech100(), rlcint.Tech100Eps250()} {
		pts, err := rlcint.Sweep(t, lsSI, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		curves[t.Name] = pts
	}

	fmt.Println("optimized delay-per-length ratio vs the zero-inductance optimum (Figure 7)")
	fmt.Printf("%-10s %10s %10s %16s\n", "l (nH/mm)", "250nm", "100nm", "100nm, 250nm-εr")
	for i := range ls {
		fmt.Printf("%-10.1f %10.2f %10.2f %16.2f\n", ls[i],
			curves["250nm"][i].DelayRatio,
			curves["100nm"][i].DelayRatio,
			curves["100nm-eps250"][i].DelayRatio)
	}

	last := len(ls) - 1
	fmt.Printf("\nat l = %.1f nH/mm the inductance costs %.0f%% at 250 nm but %.0f%% at 100 nm.\n",
		ls[last],
		100*(curves["250nm"][last].DelayRatio-1),
		100*(curves["100nm"][last].DelayRatio-1))
	fmt.Println("the εr-swapped control (identical wire capacitance) tracks the 100 nm curve exactly:")
	fmt.Println("the susceptibility comes from driver scaling, not from the interconnect.")

	// Show the driver quantities that cause it.
	for _, t := range rlcint.Technologies() {
		d := rlcint.DeviceOf(t)
		fmt.Printf("%s: r_s·(c_0+c_p) = %.1f ps (the driver's intrinsic RC)\n",
			t.Name, d.Rs*(d.C0+d.Cp)/rlcint.PS)
	}

	// Extend the two-point comparison into a trajectory with interpolated
	// intermediate nodes: the susceptibility grows monotonically as the
	// driver shrinks.
	fmt.Println("\nsusceptibility trajectory (interpolated nodes, l = 4.9 nH/mm):")
	fmt.Printf("%-10s %14s %18s\n", "feature", "driverRC (ps)", "delay ratio @4.9")
	for _, f := range []float64{250e-9, 180e-9, 130e-9, 100e-9} {
		node, err := rlcint.InterpolateTech(f)
		if err != nil {
			log.Fatal(err)
		}
		pts, err := rlcint.Sweep(node, []float64{4.9 * rlcint.NHPerMM}, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.1f %18.2f\n", node.Name,
			node.DriverRC()/rlcint.PS, pts[0].DelayRatio)
	}
}
