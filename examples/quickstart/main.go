// Quickstart: optimize repeater insertion for a global wire with on-chip
// inductance, and see what ignoring the inductance would have cost.
package main

import (
	"fmt"
	"log"

	"rlcint"
)

func main() {
	// The paper's 100 nm technology node, top-level metal, with a line
	// inductance of 2 nH/mm (a typical mid-range current-return path).
	t := rlcint.Tech100()
	l := 2 * rlcint.NHPerMM

	// Classical Elmore-based repeater insertion (what an RC-only flow does).
	rc, err := rlcint.OptimizeRC(t)
	if err != nil {
		log.Fatal(err)
	}

	// Inductance-aware optimization: minimize 50% delay per unit length.
	opt, err := rlcint.Optimize(t, l, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("repeater insertion for a 100 nm global wire, l = 2 nH/mm")
	fmt.Printf("  RC-only design:   h = %5.2f mm, k = %3.0f\n", rc.H/rlcint.MM, rc.K)
	fmt.Printf("  RLC-aware design: h = %5.2f mm, k = %3.0f  (%s)\n",
		opt.H/rlcint.MM, opt.K, opt.Model.Damping())

	// How much slower is the RC design once the inductance is real?
	rcStage := rlcint.StageOf(t, l, rc.H, rc.K)
	rcTau, err := rlcint.Delay(rcStage, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	penalty := (rcTau / rc.H) / opt.PerUnit
	fmt.Printf("  delay per mm:     RC sizing %.2f ps/mm, RLC sizing %.2f ps/mm (%.1f%% penalty)\n",
		rcTau/rc.H*rlcint.MM/rlcint.PS, opt.PerUnit*rlcint.MM/rlcint.PS, 100*(penalty-1))

	// Would this sizing ring? Compare l against the critical inductance.
	lc := rlcint.LCrit(rcStage)
	fmt.Printf("  critical inductance at RC sizing: %.3f nH/mm -> line is underdamped (l = %.1f nH/mm)\n",
		lc/rlcint.NHPerMM, l/rlcint.NHPerMM)
}
