// Crosstalk analyzes a coupled pair of global lines: the Miller capacitance
// corners the paper's Section 3 discusses, the even/odd mode delay spread a
// fixed repeater design experiences, and the classical near/far-end coupling
// coefficients — including the inductively-dominated (negative far-end)
// regime characteristic of on-chip wiring.
package main

import (
	"fmt"
	"log"

	"rlcint"
	"rlcint/internal/extract"
)

func main() {
	t := rlcint.Tech100()

	// Extract the coupling from the cross-section geometry.
	cg, cc, err := extract.CoupledCap(t.Width, t.Height, t.TIns, t.Spacing(), t.EpsR)
	if err != nil {
		log.Fatal(err)
	}
	// Inductive coupling: mutual inductance of the neighbour at one pitch.
	length := 11.1 * rlcint.MM
	lSelf, err := extract.PartialSelfL(length, t.Width, t.Height)
	if err != nil {
		log.Fatal(err)
	}
	lMut, err := extract.MutualL(length, t.Pitch)
	if err != nil {
		log.Fatal(err)
	}
	pair := rlcint.CoupledPair{
		R:  t.R,
		L:  lSelf / length,
		Cg: cg,
		Cm: cc,
		Lm: lMut / length,
	}
	if err := pair.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coupled pair on %s top metal (pitch %.1f µm):\n", t.Name, t.Pitch/rlcint.UM)
	fmt.Printf("  cg = %.1f pF/m, cm = %.1f pF/m, l = %.2f nH/mm, lm = %.2f nH/mm\n",
		pair.Cg/rlcint.PFPerM, pair.Cm/rlcint.PFPerM,
		pair.L/rlcint.NHPerMM, pair.Lm/rlcint.NHPerMM)
	fmt.Printf("  Miller spread (odd/even capacitance): %.2fx\n", pair.MillerSpread())

	kc, kl := pair.CouplingCoefficients()
	fmt.Printf("  coupling coefficients: kc = %.3f, kl = %.3f\n", kc, kl)
	fmt.Printf("  backward (near-end) crosstalk: %.1f%% of aggressor swing\n", 100*pair.BackwardCrosstalk())
	kf := pair.ForwardCrosstalk()
	fmt.Printf("  forward (far-end) coefficient: %.3g s/m", kf)
	if kf < 0 {
		fmt.Printf("  (negative: inductively dominated, opposite polarity to capacitive coupling)\n")
	} else {
		fmt.Println()
	}
	fmt.Printf("  even/odd mode velocity mismatch: %.1f%%\n", 100*pair.ModeVelocityMismatch())

	// Delay corners of a fixed repeater design across switching patterns.
	rc, err := rlcint.OptimizeRC(t)
	if err != nil {
		log.Fatal(err)
	}
	base := rlcint.StageOf(t, pair.L, rc.H, rc.K)
	even, quiet, odd := pair.WorstCaseStageDelays(base)
	fmt.Printf("\n50%% delay of the RC-sized stage across neighbour activity:\n")
	for _, c := range []struct {
		name  string
		stage rlcint.Stage
	}{{"even (neighbours in phase)", even}, {"quiet (neighbours grounded)", quiet}, {"odd (neighbours anti-phase)", odd}} {
		d, err := rlcint.Delay(c.stage, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-30s %.1f ps\n", c.name, d/rlcint.PS)
	}
	fmt.Println("\n(the delay spread across Miller corners is the uncertainty the paper's")
	fmt.Println(" Section 3.2 robustness argument must absorb, on top of the l uncertainty)")

	// Time-domain check: simulate the coupled pair and compare the induced
	// noise against the coefficient predictions.
	res, err := rlcint.RunCrosstalk(rlcint.XtalkConfig{Pair: pair, H: 5 * rlcint.MM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransient crosstalk on 5 mm of coupled pair (1 V aggressor step):\n")
	fmt.Printf("  near-end noise peak: %+.3f V (Kb·V predicts %+.3f V)\n",
		res.NearPeak, res.PredictedNear)
	fmt.Printf("  far-end noise peak:  %+.3f V (coefficient analysis predicts %s polarity)\n",
		res.FarPeak, map[float64]string{-1: "negative", 0: "no", 1: "positive"}[res.PredictedFarSign])
}
