package rlcint

import (
	"fmt"
	"math"
	"testing"
)

func TestFacadeOptimizeMatchesTable1Anchors(t *testing.T) {
	rc, err := OptimizeRC(Tech100())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc.H-11.1*MM)/(11.1*MM) > 0.01 || math.Abs(rc.K-528)/528 > 0.01 {
		t.Errorf("RC optimum (%v, %v) off Table 1", rc.H, rc.K)
	}
	opt, err := Optimize(Tech100(), 2*NHPerMM, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if opt.H <= rc.H || opt.K >= rc.K {
		t.Errorf("RLC optimum (%v,%v) should have larger h, smaller k than RC (%v,%v)",
			opt.H, opt.K, rc.H, rc.K)
	}
}

func TestFacadeDelayAndLCrit(t *testing.T) {
	st := StageOf(Tech100(), 2*NHPerMM, 11.1*MM, 528)
	tau, err := Delay(st, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= 0 || tau > 1e-9 {
		t.Errorf("implausible delay %v", tau)
	}
	if lc := LCrit(st); lc <= 0 || lc > 1*NHPerMM {
		t.Errorf("implausible lcrit %v", lc)
	}
}

func TestFacadeBaselines(t *testing.T) {
	ifo, err := OptimizeIF(Tech100(), 2*NHPerMM)
	if err != nil {
		t.Fatal(err)
	}
	rc, _ := OptimizeRC(Tech100())
	if ifo.H <= rc.H {
		t.Errorf("IF h %v should exceed RC %v at l>0", ifo.H, rc.H)
	}
	m, err := TwoPoleOf(StageOf(Tech100(), 2*NHPerMM, 11.1*MM, 528))
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := KMDelay(m, 0.5)
	if err != nil || d <= 0 {
		t.Errorf("KMDelay: %v, %v", d, err)
	}
}

func TestFacadeExtraction(t *testing.T) {
	n := Tech100()
	r, err := ExtractResistance(n.Width, n.Height, 90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-n.R)/n.R > 0.05 {
		t.Errorf("extracted r %v vs Table 1 %v", r, n.R)
	}
	c, err := ExtractCapacitance(n.Width, n.Height, n.Pitch, n.TIns, n.EpsR)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5*n.C || c > 1.2*n.C {
		t.Errorf("extracted c %v vs Table 1 %v", c, n.C)
	}
	l, err := ExtractLoopInductance(n.Width, n.Height, 11.1*MM, 0.5*MM)
	if err != nil {
		t.Fatal(err)
	}
	if l <= 0 || l >= 5*NHPerMM {
		t.Errorf("loop inductance %v nH/mm outside the paper's bound", l/NHPerMM)
	}
}

func TestFacadeReliability(t *testing.T) {
	ox, err := CheckOxide(Tech100(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !ox.OverLimit {
		t.Error("0.3V overshoot at 1.2V/2.4nm should exceed the design field")
	}
	w, err := CheckWire(3e9, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if w.RMSOver || w.PeakOver {
		t.Error("paper-scale densities should pass")
	}
}

func TestFacadeTechByName(t *testing.T) {
	n, err := TechByName("250nm")
	if err != nil || n.Name != "250nm" {
		t.Errorf("TechByName: %v %v", n, err)
	}
	if _, err := TechByName("x"); err == nil {
		t.Error("unknown must fail")
	}
	if len(Technologies()) != 2 {
		t.Error("Technologies() should list both nodes")
	}
}

func ExampleOptimize() {
	// Optimal repeater insertion for the 100 nm node's global wire at
	// l = 2 nH/mm, 50% delay.
	opt, err := Optimize(Tech100(), 2*NHPerMM, 0.5)
	if err != nil {
		panic(err)
	}
	rc, _ := OptimizeRC(Tech100())
	fmt.Printf("h = %.1f mm (RC: %.1f mm)\n", opt.H/MM, rc.H/MM)
	fmt.Printf("k = %.0fx minimum (RC: %.0fx)\n", math.Round(opt.K/10)*10, math.Round(rc.K/10)*10)
	// Output:
	// h = 15.2 mm (RC: 11.1 mm)
	// k = 240x minimum (RC: 530x)
}

func ExampleDelay() {
	st := StageOf(Tech250(), NHPerMM, 14.4*MM, 578)
	tau, err := Delay(st, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("50%% delay: %.0f ps\n", tau/PS)
	// Output:
	// 50% delay: 322 ps
}
