package rlcint

import (
	"math"
	"testing"
)

func TestFacadePlanLine(t *testing.T) {
	plan, err := PlanLine(Tech100(), 2*NHPerMM, 0.5, 45*MM)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages < 2 || plan.Stages > 5 {
		t.Errorf("45mm at h_opt≈15mm should use ~3 stages, got %d", plan.Stages)
	}
	if math.Abs(plan.H*float64(plan.Stages)-45*MM) > 1e-9*MM {
		t.Error("plan does not tile the net")
	}
	if plan.Total <= 0 || plan.Total > 2e-9 {
		t.Errorf("implausible total delay %v", plan.Total)
	}
}

func TestFacadeInterpolateTech(t *testing.T) {
	n, err := InterpolateTech(130e-9)
	if err != nil {
		t.Fatal(err)
	}
	if n.DriverRC() >= Tech250().DriverRC() || n.DriverRC() <= Tech100().DriverRC() {
		t.Errorf("130nm driver RC %v not between anchors", n.DriverRC())
	}
	if _, err := InterpolateTech(10e-9); err == nil {
		t.Error("out-of-window feature must fail")
	}
	// The interpolated node runs through the full optimizer.
	opt, err := Optimize(n, 2*NHPerMM, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if opt.PerUnit <= 0 {
		t.Error("optimization on interpolated node failed")
	}
}

func TestFacadeEffectiveLoopInductance(t *testing.T) {
	n := Tech100()
	sol, err := EffectiveLoopInductance(11.1*MM,
		Bar{X: 0, Y: 0, W: n.Width, T: n.Height},
		[]Bar{
			{X: 3 * n.Pitch, Y: 0, W: n.Width, T: n.Height},
			{X: -3 * n.Pitch, Y: 0, W: n.Width, T: n.Height},
		})
	if err != nil {
		t.Fatal(err)
	}
	if sol.LPUL <= 0 || sol.LPUL >= 5*NHPerMM {
		t.Errorf("effective l %v nH/mm outside the paper's window", sol.LPUL/NHPerMM)
	}
	sum := 0.0
	for _, i := range sol.Returns {
		sum += i
	}
	if math.Abs(sum+1) > 1e-9 {
		t.Errorf("return currents sum to %v, want -1", sum)
	}
}

func TestFacadeRunCrosstalk(t *testing.T) {
	if testing.Short() {
		t.Skip("transient simulation")
	}
	res, err := RunCrosstalk(XtalkConfig{
		Pair: CoupledPair{R: 4400, L: 2e-6, Cg: 8e-11, Cm: 2e-11, Lm: 1.4e-6},
		H:    4 * MM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NearPeak <= 0 {
		t.Errorf("near-end noise %v, want positive", res.NearPeak)
	}
	if res.PredictedFarSign != -1 {
		t.Errorf("inductively dominated pair should predict negative far end")
	}
}

func TestFacadeUncertainty(t *testing.T) {
	st, err := DelayUnderUncertainty(Tech100(), 11.1*MM, 528,
		UniformDist{Lo: 0.5 * NHPerMM, Hi: 4.5 * NHPerMM}, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Std <= 0 || st.Min > st.Max {
		t.Errorf("implausible stats: %+v", st)
	}
	tri := TriangularDist{Lo: 0.5 * NHPerMM, Mode: 1.8 * NHPerMM, Hi: 4.5 * NHPerMM}
	st2, err := DelayUnderUncertainty(Tech100(), 11.1*MM, 528, tri, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The mode-weighted distribution concentrates below the uniform mean.
	if st2.Mean >= st.Mean {
		t.Errorf("triangular-at-1.8 mean %v should sit below uniform mean %v", st2.Mean, st.Mean)
	}
}
