package rlcint

// Benchmarks for the library's extensions and key substrates, complementing
// the per-figure benchmarks in bench_test.go.

import (
	"strings"
	"testing"
)

// BenchmarkPlanLine measures a full integer-stage repeater plan.
func BenchmarkPlanLine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := PlanLine(Tech100(), 2*NHPerMM, 0.5, 45*MM); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayRamp measures the finite-rise-time delay solve.
func BenchmarkDelayRamp(b *testing.B) {
	b.ReportAllocs()
	st := StageOf(Tech100(), 2*NHPerMM, 11.1*MM, 528)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DelayRamp(st, 0.5, 50*PS); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrosstalk measures one coupled-pair transient (reduced ladder),
// amortizing circuit construction across iterations with a workspace the
// way a sweep or Monte-Carlo driver would.
func BenchmarkCrosstalk(b *testing.B) {
	b.ReportAllocs()
	cfg := XtalkConfig{
		Pair:     CoupledPair{R: 4400, L: 2e-6, Cg: 8e-11, Cm: 2e-11, Lm: 1.4e-6},
		H:        3 * MM,
		Sections: 12,
	}
	var w XtalkWorkspace
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEffectiveLoopInductance measures the return-path solve for a
// 12-conductor return set.
func BenchmarkEffectiveLoopInductance(b *testing.B) {
	b.ReportAllocs()
	n := Tech100()
	sig := Bar{X: 0, Y: 0, W: n.Width, T: n.Height}
	var rets []Bar
	for i := 1; i <= 12; i++ {
		rets = append(rets, Bar{X: float64(i) * n.Pitch, Y: 0, W: n.Width, T: n.Height})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EffectiveLoopInductance(11.1*MM, sig, rets); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetlistParse measures parsing a ~200-element deck.
func BenchmarkNetlistParse(b *testing.B) {
	b.ReportAllocs()
	var sb strings.Builder
	sb.WriteString("generated ladder\nV1 n0 0 PULSE(0 1 0 10p 10p 1n 2n)\n")
	for i := 0; i < 64; i++ {
		sb.WriteString("R")
		sb.WriteString(itoa(i))
		sb.WriteString(" n")
		sb.WriteString(itoa(i))
		sb.WriteString(" m")
		sb.WriteString(itoa(i))
		sb.WriteString(" 0.8\nL")
		sb.WriteString(itoa(i))
		sb.WriteString(" m")
		sb.WriteString(itoa(i))
		sb.WriteString(" n")
		sb.WriteString(itoa(i + 1))
		sb.WriteString(" 1n\nC")
		sb.WriteString(itoa(i))
		sb.WriteString(" n")
		sb.WriteString(itoa(i + 1))
		sb.WriteString(" 0 10f\n")
	}
	sb.WriteString(".end\n")
	deck := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseNetlist(strings.NewReader(deck)); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
