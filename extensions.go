package rlcint

import (
	"context"
	"io"

	"rlcint/internal/core"
	"rlcint/internal/extract"
	"rlcint/internal/mc"
	"rlcint/internal/relia"
	"rlcint/internal/spice"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
	"rlcint/internal/xtalk"
)

// This file exports the library's extensions beyond the paper's headline
// experiments: finite rise-time delays, energy-delay tradeoffs, the
// higher-order model ablation, coupled-line (crosstalk) analysis, wire
// self-heating, delay-vs-length diagnostics, and SPICE netlist
// import/export for the transient engine.

// DelayRamp returns the f×100% propagation delay of a stage for a
// saturated-ramp input with the given rise time (a step when tRise = 0),
// measured from the input's f-crossing.
func DelayRamp(st Stage, f, tRise float64) (float64, error) {
	m, err := TwoPoleOf(st)
	if err != nil {
		return 0, err
	}
	d, err := m.DelayRamp(f, tRise)
	if err != nil {
		return 0, err
	}
	return d.Tau, nil
}

// TradeoffOptimum is an energy-aware repeater solution.
type TradeoffOptimum = core.TradeoffOptimum

// OptimizeTradeoff minimizes (delay per length)·(energy per length)^w for
// the technology's line with inductance l: w = 0 reproduces Optimize;
// larger w trades delay for switching energy.
func OptimizeTradeoff(t Technology, l, f, w float64) (TradeoffOptimum, error) {
	return core.OptimizeTradeoff(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f}, w)
}

// HigherOrderOptimum is the order-q ablation solution.
type HigherOrderOptimum = core.HigherOrderOptimum

// OptimizeHigherOrder repeats the optimization with an order-q AWE delay
// model — the ablation for the paper's two-pole approximation.
func OptimizeHigherOrder(t Technology, l, f float64, q int) (HigherOrderOptimum, error) {
	return core.OptimizeHigherOrder(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f}, q)
}

// DelayGrowthExponent estimates d(ln τ)/d(ln h) at (h, k): 2 in the RC
// limit, approaching 1 in the LC limit as l grows (the paper's linearity
// observation).
func DelayGrowthExponent(t Technology, l, h, k float64) (float64, error) {
	return core.DelayGrowthExponent(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l)}, h, k)
}

// CoupledPair models two identical coupled lines (even/odd modes, Miller
// spread, crosstalk coefficients).
type CoupledPair = tline.CoupledPair

// HeatReport quantifies wire Joule self-heating.
type HeatReport = relia.HeatReport

// SelfHeating evaluates the steady-state temperature rise of the node's
// top-metal wire at the given rms current density (A/m²).
func SelfHeating(t Technology, rmsJ float64) (HeatReport, error) {
	return relia.SelfHeating(t, rmsJ)
}

// LinePlan is a realizable (integer-stage) repeater plan for a net.
type LinePlan = core.LinePlan

// PlanLine converts the continuous optimum into a realizable plan for a net
// of total length L (meters): integer stage count, re-tuned repeater size,
// end-to-end delay.
func PlanLine(t Technology, l, f, L float64) (LinePlan, error) {
	return core.PlanLine(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f}, L)
}

// PlanLineCtx is PlanLine under run control: cancellation and lim are
// checked at every inner optimizer iteration and candidate evaluation, so a
// cancelled plan aborts promptly with a typed stop error.
func PlanLineCtx(ctx context.Context, t Technology, l, f, L float64, lim RunLimits) (LinePlan, error) {
	return core.PlanLineCtx(ctx, core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f, Limits: lim}, L)
}

// InterpolateTech synthesizes a technology node at an intermediate feature
// size (70–350 nm) by log–log interpolation between the paper's anchors,
// extending the scaling study into a trajectory.
func InterpolateTech(feature float64) (Technology, error) {
	return tech.InterpolateNode(feature)
}

// UncertaintyStats summarizes a Monte-Carlo sampled quantity.
type UncertaintyStats = mc.Stats

// UniformDist samples uniformly from [Lo, Hi] (SI units of the sampled
// quantity).
type UniformDist = mc.Uniform

// TriangularDist samples a triangular distribution (Lo, Mode, Hi).
type TriangularDist = mc.Triangular

// DelayUnderUncertainty samples the line inductance from lDist (H/m) and
// returns the statistics of a fixed design's stage delay — the statistical
// form of the paper's Section 3.2 uncertainty argument. Deterministic for a
// given seed.
func DelayUnderUncertainty(t Technology, h, k float64, lDist mc.Dist, n int, seed int64) (UncertaintyStats, error) {
	return mc.DelayUnderUncertainty(core.Problem{Device: DeviceOf(t), Line: Line{R: t.R, C: t.C}}, h, k, lDist, n, seed)
}

// UncertaintyOpts configures a Monte-Carlo run's execution: trial
// parallelism (bit-identical to serial for any worker count), run limits,
// and an in-order streaming hook for completed trials.
type UncertaintyOpts = mc.Opts

// DelayUnderUncertaintyCtx is DelayUnderUncertainty under run control with
// optional parallel trial evaluation. A stopped run returns the statistics
// of the completed trial prefix alongside the typed stop error.
func DelayUnderUncertaintyCtx(ctx context.Context, t Technology, h, k float64, lDist mc.Dist, n int, seed int64, o UncertaintyOpts) (UncertaintyStats, error) {
	return mc.DelayUnderUncertaintyCtx(ctx, core.Problem{Device: DeviceOf(t), Line: Line{R: t.R, C: t.C}}, h, k, lDist, n, seed, o)
}

// PenaltyUnderUncertainty samples l and returns the statistics of the fixed
// design's delay-per-length over the per-sample optimum (the Monte-Carlo
// Figure 8).
func PenaltyUnderUncertainty(t Technology, h, k float64, lDist mc.Dist, n int, seed int64) (UncertaintyStats, error) {
	return mc.PenaltyUnderUncertainty(core.Problem{Device: DeviceOf(t), Line: Line{R: t.R, C: t.C}}, h, k, lDist, n, seed)
}

// PenaltyUnderUncertaintyCtx is PenaltyUnderUncertainty under run control
// with optional parallel trial evaluation; semantics match
// DelayUnderUncertaintyCtx.
func PenaltyUnderUncertaintyCtx(ctx context.Context, t Technology, h, k float64, lDist mc.Dist, n int, seed int64, o UncertaintyOpts) (UncertaintyStats, error) {
	return mc.PenaltyUnderUncertaintyCtx(ctx, core.Problem{Device: DeviceOf(t), Line: Line{R: t.R, C: t.C}}, h, k, lDist, n, seed, o)
}

// XtalkConfig configures a coupled-pair crosstalk transient (aggressor step
// into a terminated quiet victim).
type XtalkConfig = xtalk.Config

// XtalkResult carries the induced near/far-end noise waveforms and metrics.
type XtalkResult = xtalk.Result

// RunCrosstalk simulates aggressor-to-victim crosstalk on a coupled pair of
// discretized RLC ladders (coupling capacitors + mutual inductors) and
// compares the induced noise against the classical coupling-coefficient
// predictions.
func RunCrosstalk(cfg XtalkConfig) (XtalkResult, error) { return xtalk.Run(cfg) }

// XtalkWorkspace amortizes repeated crosstalk runs with identical configs by
// reusing the built coupled-pair circuit (and, through the spice layer, the
// cached reduced-order projection). Not safe for concurrent use.
type XtalkWorkspace = xtalk.Workspace

// Bar is a rectangular conductor cross-section for the return-path solver.
type Bar = extract.Bar

// LoopSolution is the energy-minimizing return-current distribution and the
// resulting effective loop inductance.
type LoopSolution = extract.LoopSolution

// EffectiveLoopInductance computes the effective loop inductance of a
// signal wire whose current returns through an arbitrary set of parallel
// conductors, with the return currents distributed to minimize magnetic
// energy — the mechanism behind the paper's return-path-dependent l.
func EffectiveLoopInductance(length float64, signal Bar, returns []Bar) (LoopSolution, error) {
	return extract.EffectiveLoopL(length, signal, returns)
}

// Circuit re-exports the transient simulator's netlist type for users who
// want to build or load circuits directly.
type Circuit = spice.Circuit

// NewCircuit returns an empty circuit for the transient engine.
func NewCircuit() *Circuit { return spice.New() }

// ParseNetlist loads a SPICE-style deck into a Circuit (R, C, L, V, I with
// DC/PULSE/PWL/SIN sources).
func ParseNetlist(r io.Reader) (*spice.ParseResult, error) { return spice.ParseNetlist(r) }
