package rlcint

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestFacadeGuardsNaNInputs(t *testing.T) {
	nan := math.NaN()
	if _, err := Optimize(Tech100(), nan, 0.5); !errors.Is(err, ErrDomain) {
		t.Errorf("Optimize(l=NaN) = %v, want ErrDomain match", err)
	}
	if _, err := Optimize(Tech100(), 2*NHPerMM, nan); !errors.Is(err, ErrDomain) {
		t.Errorf("Optimize(f=NaN) = %v, want ErrDomain match", err)
	}
	// StageOf cannot fail by construction; the model builders downstream must
	// reject the poisoned stage instead of propagating NaN silently.
	st := StageOf(Tech100(), nan, 1e-3, 100)
	if _, err := TwoPoleOf(st); !errors.Is(err, ErrDomain) {
		t.Errorf("TwoPoleOf(NaN stage) = %v, want ErrDomain match", err)
	}
	if _, err := Delay(st, 0.5); !errors.Is(err, ErrDomain) {
		t.Errorf("Delay(NaN stage) = %v, want ErrDomain match", err)
	}
	good := StageOf(Tech100(), 2*NHPerMM, 1e-3, 100)
	if _, err := Delay(good, nan); !errors.Is(err, ErrDomain) {
		t.Errorf("Delay(f=NaN) = %v, want ErrDomain match", err)
	}
	if _, err := Delay(good, 1.5); !errors.Is(err, ErrDomain) {
		t.Errorf("Delay(f=1.5) = %v, want ErrDomain match", err)
	}
}

func TestFacadeOptimizeWithReport(t *testing.T) {
	rep := &DiagReport{}
	opt, err := OptimizeWithReport(Tech100(), 2*NHPerMM, 0.5, rep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimize(Tech100(), 2*NHPerMM, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if opt.H != want.H || opt.K != want.K {
		t.Errorf("reported run (%g, %g) differs from plain run (%g, %g)", opt.H, opt.K, want.H, want.K)
	}
	if len(rep.Attempts) == 0 {
		t.Fatal("report collected no ladder attempts")
	}
	if rep.Tried("opt-newton") == 0 {
		t.Errorf("no opt-newton rung recorded:\n%s", rep)
	}
	if rep.Summary() == "" {
		t.Error("Summary() empty for a populated report")
	}
}

func TestFacadeDiagString(t *testing.T) {
	_, err := Optimize(Tech100(), math.NaN(), 0.5)
	if err == nil {
		t.Fatal("expected a domain error")
	}
	s := DiagString(err, nil)
	if s == "" {
		t.Fatal("DiagString returned nothing")
	}
	// A typed failure renders multi-line context; at minimum the op and the
	// message must appear.
	if !strings.Contains(s, "tline.Line") {
		t.Errorf("DiagString missing op context:\n%s", s)
	}
	rep := &DiagReport{}
	rep.Record("dc-gmin", "gmin=1e-05", "ok", "", nil)
	s = DiagString(err, rep)
	if !strings.Contains(s, "dc-gmin") {
		t.Errorf("DiagString ignored the report:\n%s", s)
	}
}

func TestFacadeSolverErrorExtraction(t *testing.T) {
	_, err := Optimize(Tech100(), 2*NHPerMM, -1)
	if err == nil {
		t.Fatal("negative threshold accepted")
	}
	var se *SolverError
	if !errors.As(err, &se) {
		t.Fatalf("error %T does not unwrap to *SolverError", err)
	}
	if se.Op == "" {
		t.Error("SolverError.Op empty")
	}
}
