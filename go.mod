module rlcint

go 1.22
