// Package rlcint is a library for analyzing on-chip inductance effects and
// optimizing repeater insertion for distributed RLC interconnects. It
// reproduces the methodology of Banerjee & Mehrotra, "Analysis of On-Chip
// Inductance Effects using a Novel Performance Optimization Methodology for
// Distributed RLC Interconnects" (DAC 2001):
//
//   - a rigorous two-pole delay model of the driver–line–load stage derived
//     from the exact ABCD transfer function (no curve fitting), with the
//     numerically solved f×100% delay of the paper's Eq. (3);
//   - repeater insertion by direct minimization of delay per unit length
//     over segment length h and repeater size k (Eqs. (7)–(8));
//   - the classical Elmore/RC optimum, critical inductance (Eq. (4)), and
//     the Kahng–Muddu and Ismail–Friedman baselines;
//   - a transient MNA circuit simulator with a calibrated repeater model
//     for the ring-oscillator, false-switching and reliability experiments;
//   - geometry-based r/l/c extraction (closed forms and a 2-D BEM solver).
//
// The package root re-exports the stable public surface; the implementation
// lives under internal/. Start with Optimize:
//
//	opt, err := rlcint.Optimize(rlcint.Tech100(), 2*rlcint.NHPerMM, 0.5)
package rlcint

import (
	"context"

	"rlcint/internal/baseline"
	"rlcint/internal/core"
	"rlcint/internal/diag"
	"rlcint/internal/extract"
	"rlcint/internal/pade"
	"rlcint/internal/relia"
	"rlcint/internal/repeater"
	"rlcint/internal/ringosc"
	"rlcint/internal/runctl"
	"rlcint/internal/tech"
	"rlcint/internal/tline"
)

// Typed solver diagnostics: every iterative routine in the library reports
// failures that wrap exactly one of these sentinels, matchable with
// errors.Is; the structured context travels in a *SolverError extractable
// with errors.As.
var (
	// ErrNonConvergence marks an iterative solve that exhausted its budget
	// or stalled without meeting its tolerance.
	ErrNonConvergence = diag.ErrNonConvergence
	// ErrSingularJacobian marks a linear(ized) system with no usable pivot.
	ErrSingularJacobian = diag.ErrSingularJacobian
	// ErrTimestepCollapse marks transient step control that halved past its
	// floor without recovering; the accompanying result is partial.
	ErrTimestepCollapse = diag.ErrTimestepCollapse
	// ErrDomain marks an input outside a routine's domain (NaN/Inf values,
	// negative tolerances, thresholds outside their interval, ...).
	ErrDomain = diag.ErrDomain
	// ErrCancelled marks a solve stopped by context cancellation; the
	// accompanying result (where the API returns one) holds the work
	// completed before the stop.
	ErrCancelled = diag.ErrCancelled
	// ErrDeadline marks a solve stopped by an expired context deadline or
	// an exhausted RunLimits.Timeout wall-clock budget.
	ErrDeadline = diag.ErrDeadline
	// ErrBudget marks a solve stopped by an exhausted RunLimits.MaxIters
	// iteration budget.
	ErrBudget = diag.ErrBudget
	// ErrPanic marks a panic inside the solver stack, contained at the
	// public API boundary; the *SolverError carries the stack trace.
	ErrPanic = diag.ErrPanic
)

// RunLimits bound a single solve: Timeout is a wall-clock budget and
// MaxIters an iteration budget (the iteration unit is each solver's inner
// loop — Newton iterations, simplex steps, Monte-Carlo trials). The zero
// value imposes no bounds. Limits compose with context cancellation: every
// long-running solver checks both at iteration boundaries and returns a
// typed ErrCancelled / ErrDeadline / ErrBudget failure within one step.
type RunLimits = runctl.Limits

// IsRunStop reports whether err is a terminal run-control stop
// (ErrCancelled, ErrDeadline, or ErrBudget) rather than a convergence
// failure — the distinction recovery logic must make: stops should never
// be retried.
func IsRunStop(err error) bool { return runctl.IsStop(err) }

// SolverError is a typed solver failure carrying structured context (time,
// iteration, residual norm, gmin level, damping level).
type SolverError = diag.Error

// DiagReport collects the recovery-ladder attempts of one solver run; pass
// one to OptimizeWithReport (or spice.TranOpts.Report) and inspect or print
// it afterwards.
type DiagReport = diag.Report

// DiagAttempt is one recorded rung of a recovery ladder.
type DiagAttempt = diag.Attempt

// DiagString renders an error for human consumption: typed solver failures
// get a multi-line breakdown of their context, and a non-nil report appends
// the recovery attempts. Plain errors render as themselves.
func DiagString(err error, rep *DiagReport) string { return diag.Describe(err, rep) }

// Unit conversion constants (the paper's engineering units to SI).
const (
	OhmPerMM = tech.OhmPerMM // Ω/mm → Ω/m
	PFPerM   = tech.PFPerM   // pF/m → F/m
	NHPerMM  = tech.NHPerMM  // nH/mm → H/m
	MM       = tech.MM       // mm → m
	UM       = tech.UM       // µm → m
	FF       = tech.FF       // fF → F
	KOhm     = tech.KOhm     // kΩ → Ω
	PS       = tech.PS       // ps → s
)

// Technology bundles a node's interconnect and device parameters (Table 1).
type Technology = tech.Node

// Tech250 returns the paper's 250 nm node (metal 6).
func Tech250() Technology { return tech.Node250() }

// Tech100 returns the paper's 100 nm node (metal 8).
func Tech100() Technology { return tech.Node100() }

// Tech100Eps250 returns the paper's control: the 100 nm node with the
// 250 nm dielectric (identical capacitance per unit length).
func Tech100Eps250() Technology { return tech.Node100WithEps250() }

// Technologies returns the two primary nodes.
func Technologies() []Technology { return tech.Nodes() }

// TechByName looks a node up ("250nm", "100nm", "100nm-eps250").
func TechByName(name string) (Technology, error) { return tech.ByName(name) }

// Line holds per-unit-length r, l, c of a uniform interconnect (SI).
type Line = tline.Line

// Stage is a driver–line–load configuration (the paper's Figure 1).
type Stage = tline.Stage

// Device is a minimum-sized repeater (r_s, c_0, c_p).
type Device = repeater.MinDevice

// DeviceOf extracts the repeater device of a technology.
func DeviceOf(t Technology) Device { return repeater.FromTech(t) }

// LineOf builds the technology's top-metal line with inductance l (H/m).
func LineOf(t Technology, l float64) Line { return Line{R: t.R, L: l, C: t.C} }

// StageOf assembles the stage for a size-k repeater driving h meters of the
// technology's line with inductance l, loaded by an identical repeater.
func StageOf(t Technology, l, h, k float64) Stage {
	return DeviceOf(t).Stage(LineOf(t, l), h, k)
}

// TwoPole is the paper's second-order delay model (Eq. (2)).
type TwoPole = pade.Model

// TwoPoleOf builds the two-pole model of a stage from the exact transfer
// function's first two moments.
func TwoPoleOf(st Stage) (TwoPole, error) { return pade.FromStage(st) }

// Delay solves the paper's Eq. (3): the time at which the stage's step
// response first reaches fraction f (0 < f < 1) of the final value.
func Delay(st Stage, f float64) (tau float64, err error) {
	defer diag.RecoverTo(&err, "rlcint.Delay")
	m, err := pade.FromStage(st)
	if err != nil {
		return 0, err
	}
	d, err := m.Delay(f)
	if err != nil {
		return 0, err
	}
	return d.Tau, nil
}

// LCrit evaluates the paper's Eq. (4): the line inductance per unit length
// that would make the stage critically damped (st.Line.L is ignored).
func LCrit(st Stage) float64 { return pade.LCrit(st) }

// Optimum is a repeater-insertion solution.
type Optimum = core.Optimum

// RCOptimum is the classical Elmore-delay solution.
type RCOptimum = repeater.RCOptimum

// Optimize minimizes the delay per unit length over segment length and
// repeater size for the technology's line with inductance l (H/m) at
// threshold f (0 → 50%). This is the paper's core methodology.
func Optimize(t Technology, l, f float64) (Optimum, error) {
	return core.Optimize(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f})
}

// OptimizeCtx is Optimize under run control: the optimizer ladder checks
// ctx and lim at every inner iteration, so cancellation or an exhausted
// budget aborts promptly with a typed stop error (match with IsRunStop).
func OptimizeCtx(ctx context.Context, t Technology, l, f float64, lim RunLimits) (Optimum, error) {
	return core.OptimizeCtx(ctx, core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f, Limits: lim})
}

// OptimizeWithReport is Optimize with a recovery-ladder report collector:
// rep records which optimizer rungs ran (Newton cold start, perturbed
// multi-starts, Nelder–Mead fallback, polish) and how each fared.
func OptimizeWithReport(t Technology, l, f float64, rep *DiagReport) (Optimum, error) {
	return core.Optimize(core.Problem{Device: DeviceOf(t), Line: LineOf(t, l), F: f, Report: rep})
}

// OptimizeRC returns the closed-form Elmore/RC optimum (h_optRC, k_optRC,
// τ_optRC) for the technology.
func OptimizeRC(t Technology) (RCOptimum, error) {
	return repeater.RCOptimal(DeviceOf(t), Line{R: t.R, C: t.C})
}

// ExtractDevice recovers (r_s, c_0, c_p) from measured RC-optimal h, k and
// segment delay — the procedure behind Table 1.
func ExtractDevice(line Line, h, k, tau float64) (Device, error) {
	return repeater.Extract(line, h, k, tau)
}

// SweepPoint carries the Figure 4–8 quantities at one inductance.
type SweepPoint = core.SweepPoint

// SweepOptions configure the batched sweep engine: worker count, tile size,
// and warm-start continuation. See core.SweepOptions for the determinism
// contract.
type SweepOptions = core.SweepOptions

// NodeSweep pairs a technology node with its sweep row.
type NodeSweep = core.NodeSweep

// Sweep runs the paper's Section 3 study over per-unit-length inductances
// (H/m) at threshold f. Points evaluate concurrently through the batched
// engine with cold-start defaults, so results are bit-identical to the
// serial reference at any worker count; use SweepBatch for warm-start
// continuation or explicit worker/tile control.
func Sweep(t Technology, ls []float64, f float64) ([]SweepPoint, error) {
	return core.SweepBatchCtx(context.Background(), core.SweepOptions{}, t, ls, f)
}

// SweepBatch is Sweep with explicit engine options (workers, tile size,
// warm-start continuation, limits).
func SweepBatch(ctx context.Context, opts SweepOptions, t Technology, ls []float64, f float64) ([]SweepPoint, error) {
	return core.SweepBatchCtx(ctx, opts, t, ls, f)
}

// SweepNodes runs the study for several technology nodes concurrently —
// the engine behind cmd/figures' Figures 4–8 — returning one row per node.
// On a stop or error the completed prefix of rows (last possibly partial)
// is returned alongside the typed error.
func SweepNodes(ctx context.Context, opts SweepOptions, ts []Technology, ls []float64, f float64) ([]NodeSweep, error) {
	return core.SweepNodesCtx(ctx, opts, ts, ls, f)
}

// SweepCtx is Sweep under run control; a stopped sweep returns the
// completed prefix of points alongside the typed stop error. It runs the
// serial reference path (one point at a time, cold starts) — the batched
// engine's workers=1 cold mode is bit-identical to it.
func SweepCtx(ctx context.Context, t Technology, ls []float64, f float64, lim RunLimits) ([]SweepPoint, error) {
	return core.SweepCtx(ctx, lim, t, ls, f)
}

// IFOptimum is the Ismail–Friedman curve-fitted baseline solution.
type IFOptimum = baseline.IFOptimum

// OptimizeIF evaluates the Ismail–Friedman fitted repeater formulas.
func OptimizeIF(t Technology, l float64) (IFOptimum, error) {
	return baseline.IFOptimal(DeviceOf(t), LineOf(t, l))
}

// KMDelay evaluates the Kahng–Muddu analytical delay approximation for a
// two-pole model; the returned regime identifies the branch used.
func KMDelay(m TwoPole, f float64) (float64, baseline.KMRegime, error) {
	return baseline.KMDelay(m, f)
}

// RingConfig configures a ring-oscillator or buffered-line experiment.
type RingConfig = ringosc.Config

// RingWaves are the monitored waveforms of a transient experiment.
type RingWaves = ringosc.Waves

// RingMetrics are the scalar measurements of a transient experiment.
type RingMetrics = ringosc.Metrics

// RunRing simulates the paper's five-stage ring oscillator (Figures 9–11).
func RunRing(cfg RingConfig) (w RingWaves, m RingMetrics, err error) {
	defer diag.RecoverTo(&err, "rlcint.RunRing")
	return ringosc.RunRing(cfg)
}

// RunBufferedLine simulates the square-wave-driven buffered line the paper
// uses to show false switching is not a ring artifact.
func RunBufferedLine(cfg RingConfig) (w RingWaves, m RingMetrics, err error) {
	defer diag.RecoverTo(&err, "rlcint.RunBufferedLine")
	return ringosc.RunBufferedLine(cfg)
}

// PeriodPoint is one point of the Figure 11 period-versus-inductance sweep.
type PeriodPoint = ringosc.PeriodPoint

// SweepRingPeriod sweeps the ring oscillator over line inductances and
// flags period collapse (false switching).
func SweepRingPeriod(cfg RingConfig, ls []float64) (pts []PeriodPoint, err error) {
	defer diag.RecoverTo(&err, "rlcint.SweepRingPeriod")
	return ringosc.SweepPeriod(cfg, ls)
}

// OxideReport assesses gate-oxide overstress from inductive overshoot.
type OxideReport = relia.OxideReport

// CheckOxide evaluates oxide stress given the measured overshoot above VDD
// at a repeater input (Section 3.3.2).
func CheckOxide(t Technology, overshootV float64) (OxideReport, error) {
	return relia.CheckOxide(t, overshootV)
}

// WireReport screens wire current densities against electromigration and
// Joule-heating limits.
type WireReport = relia.WireReport

// CheckWire screens peak and rms current densities (A/m²).
func CheckWire(peakJ, rmsJ float64) (WireReport, error) {
	return relia.CheckWire(peakJ, rmsJ)
}

// ExtractResistance returns r (Ω/m) for a copper wire cross-section at the
// given temperature (°C).
func ExtractResistance(width, thickness, tempC float64) (float64, error) {
	return extract.ResistancePUL(extract.RhoAtTemp(extract.RhoCu, extract.TCRCu, tempC), width, thickness)
}

// ExtractCapacitance returns the victim line's total capacitance per unit
// length (F/m) for the standard three-line-over-substrate cross-section,
// using the 2-D BEM extractor.
func ExtractCapacitance(width, thickness, pitch, tIns, epsr float64) (float64, error) {
	return extract.TotalCap2D(extract.Table1Geometry(width, thickness, pitch, tIns), 0, epsr, 14)
}

// ExtractLoopInductance returns the line's loop inductance per unit length
// (H/m) for a current return at distance returnDist, for a wire of the
// given length (the partial-inductance composition depends weakly on it).
func ExtractLoopInductance(width, thickness, length, returnDist float64) (float64, error) {
	return extract.LoopLPUL(length, width, thickness, returnDist)
}
